//! The §6.2 scale-up workload: relations `PSP1..PSP22` with schema
//! `(P, SP, NUM)`, chain-join component queries `SQ1..SQ18` and
//! composites `CQ1..CQ5`.

use mqo_catalog::{Catalog, ColStats, ColType, TableId};
use mqo_expr::{Atom, CmpOp, Predicate};
use mqo_logical::{Batch, LogicalPlan, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of PSP relations (the paper uses 22).
pub const NUM_RELATIONS: usize = 22;
/// Number of component queries (the paper uses 18).
pub const NUM_COMPONENTS: usize = 18;

/// The scale-up workload.
pub struct Scaleup {
    /// Catalog with `PSP1..PSP22`.
    pub catalog: Catalog,
    tables: Vec<TableId>,
    /// Per-component selection constants `(a_i, b_i)`, `a_i ≠ b_i`.
    consts: Vec<(i64, i64)>,
}

impl Scaleup {
    /// Builds the PSP relations: 20 000–40 000 tuples each (seeded
    /// pseudo-random, as in the paper), 25 tuples per 4 KB block (the
    /// `pad` column sizes the tuple at ~160 bytes), no indexes.
    #[must_use]
    pub fn new(seed: u64) -> Scaleup {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cat = Catalog::new();
        let mut tables = Vec::with_capacity(NUM_RELATIONS);
        for i in 1..=NUM_RELATIONS {
            let rows = rng.random_range(20_000..=40_000) as f64;
            let t = cat
                .table(&format!("psp{i}"))
                .rows(rows)
                .column(
                    "p",
                    ColType::Int,
                    ColStats::uniform_int(0, 39_999, rows.min(40_000.0)),
                )
                .column(
                    "sp",
                    ColType::Int,
                    ColStats::uniform_int(0, 39_999, rows.min(40_000.0)),
                )
                .int_uniform("num", 0, 99)
                .column("pad", ColType::Str(136), ColStats::opaque(rows))
                .build();
            tables.push(t);
        }
        // Mostly unselective constants (the paper calls them "arbitrary
        // values"): the component pair differs in constant but both
        // queries remain dominated by the shared 4-relation subchain.
        let consts: Vec<(i64, i64)> = (0..NUM_COMPONENTS)
            .map(|_| {
                let a = rng.random_range(2i64..=15);
                let b = a + rng.random_range(3i64..=15);
                (a, b)
            })
            .collect();
        Scaleup {
            catalog: cat,
            tables,
            consts,
        }
    }

    /// Chain join `PSPlo ⋈ PSPlo+1 ⋈ … ⋈ PSPhi` on `PSPj.SP = PSPj+1.P`,
    /// with `σ(PSPlo.NUM ≥ bound)` on the first relation.
    fn chain(&self, lo: usize, hi: usize, bound: i64) -> LogicalPlan {
        let name = |i: usize| format!("psp{}", i + 1);
        let mut plan = LogicalPlan::scan(self.tables[lo]).select(Predicate::atom(Atom::cmp(
            self.catalog.col(&name(lo), "num"),
            CmpOp::Ge,
            bound,
        )));
        for j in lo + 1..=hi {
            let pred = Predicate::atom(Atom::eq_cols(
                self.catalog.col(&name(j - 1), "sp"),
                self.catalog.col(&name(j), "p"),
            ));
            plan = plan.join(LogicalPlan::scan(self.tables[j]), pred);
        }
        plan
    }

    /// Component query `SQi` (1-based): a *pair* of 5-relation chain
    /// queries over `PSPi..PSPi+4` differing only in the selection
    /// constant on `PSPi.NUM`.
    ///
    /// # Panics
    ///
    /// Panics unless `i` is in `1..=NUM_COMPONENTS`.
    #[must_use]
    pub fn sq(&self, i: usize) -> Vec<Query> {
        assert!((1..=NUM_COMPONENTS).contains(&i));
        let (a, b) = self.consts[i - 1];
        let lo = i - 1;
        let hi = lo + 4;
        vec![
            Query::new(format!("SQ{i}a"), self.chain(lo, hi, a)),
            Query::new(format!("SQ{i}b"), self.chain(lo, hi, b)),
        ]
    }

    /// Composite query `CQi` (1-based, 1..=5): components `SQ1..SQ(4i−2)`
    /// — `CQi` touches `4i+2` relations and carries `32i−16` join and
    /// `8i−4` selection predicates, as in the paper.
    ///
    /// # Panics
    ///
    /// Panics unless `i` is in `1..=5`.
    #[must_use]
    pub fn cq(&self, i: usize) -> Batch {
        assert!((1..=5).contains(&i), "CQ1..CQ5");
        let mut qs = Vec::new();
        for k in 1..=(4 * i - 2) {
            qs.extend(self.sq(k));
        }
        Batch::of(qs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_logical::validate;

    #[test]
    fn relations_match_paper_parameters() {
        let w = Scaleup::new(7);
        assert_eq!(w.tables.len(), 22);
        for i in 1..=NUM_RELATIONS {
            let t = w.catalog.table_by_name(&format!("psp{i}")).unwrap();
            assert!((20_000.0..=40_000.0).contains(&t.cardinality));
            // ~25 tuples per 4KB block
            let width = w.catalog.tuple_width(t.id);
            let per_block = 4096 / width;
            assert!(per_block == 25, "width {width} gives {per_block}/block");
            assert!(t.clustered_on.is_none(), "no indexes in scale-up setup");
        }
    }

    #[test]
    fn cq_shape_matches_paper() {
        let w = Scaleup::new(7);
        for i in 1..=5 {
            let b = w.cq(i);
            // 4i−2 components, two queries each
            assert_eq!(b.len(), 2 * (4 * i - 2));
            // relations used: PSP1 .. PSP(4i+2)
            let mut max_rel = 0usize;
            for q in &b.queries {
                validate(&q.plan, &w.catalog).unwrap();
                for t in q.plan.tables() {
                    let name = &w.catalog.table_ref(t).name;
                    let n: usize = name[3..].parse().unwrap();
                    max_rel = max_rel.max(n);
                }
                // each query: 4 join predicates, 1 selection
                let mut joins = 0;
                let mut selects = 0;
                q.plan.walk(&mut |p| match p {
                    LogicalPlan::Join { .. } => joins += 1,
                    LogicalPlan::Select { .. } => selects += 1,
                    _ => {}
                });
                assert_eq!(joins, 4);
                assert_eq!(selects, 1);
            }
            assert_eq!(max_rel, 4 * i + 2);
        }
    }

    #[test]
    fn component_pairs_differ_only_in_constant() {
        let w = Scaleup::new(7);
        let pair = w.sq(3);
        assert_eq!(pair.len(), 2);
        assert_eq!(pair[0].plan.tables(), pair[1].plan.tables());
        assert_ne!(pair[0].plan, pair[1].plan);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Scaleup::new(9);
        let b = Scaleup::new(9);
        for i in 1..=NUM_RELATIONS {
            let n = format!("psp{i}");
            assert_eq!(
                a.catalog.table_by_name(&n).unwrap().cardinality,
                b.catalog.table_by_name(&n).unwrap().cardinality
            );
        }
        assert_eq!(a.consts, b.consts);
    }
}
