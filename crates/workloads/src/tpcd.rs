//! TPC-D-like schema and queries.

use mqo_catalog::{Catalog, ColId, ColStats, ColType, TableId};
use mqo_expr::{AggExpr, AggFunc, ArithOp, Atom, CmpOp, ParamId, Predicate, ScalarExpr};
use mqo_logical::{Batch, LogicalPlan, Query};

/// The TPC-D-like workload: schema + statistics at a chosen scale factor
/// plus the paper's query batches.
pub struct Tpcd {
    /// The catalog (owns all column ids the queries reference).
    pub catalog: Catalog,
    /// Scale factor (1.0 = the paper's 1 GB configuration).
    pub scale: f64,
    region: TableId,
    nation: TableId,
    supplier: TableId,
    customer: TableId,
    part: TableId,
    partsupp: TableId,
    orders: TableId,
    lineitem: TableId,
    // derived columns for aggregates
    min_cost: ColId,
    value: ColId,
    rev: ColId,
    maxrev: ColId,
    rev3: ColId,
    rev5: ColId,
    rev7: ColId,
    rev9: ColId,
    rev10: ColId,
}

impl Tpcd {
    /// Builds the schema at the given scale factor. Row counts follow the
    /// TPC-D specification: `region` 5, `nation` 25, `supplier` 10k·SF,
    /// `customer` 150k·SF, `part` 200k·SF, `partsupp` 800k·SF, `orders`
    /// 1.5M·SF, `lineitem` 6M·SF; all tables clustered on their primary
    /// key (the paper's Experiment-1 setup).
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive.
    #[must_use]
    pub fn new(scale: f64) -> Tpcd {
        assert!(scale > 0.0);
        let s = scale;
        let mut cat = Catalog::new();
        let sup_n = (10_000.0 * s).max(10.0);
        let cust_n = (150_000.0 * s).max(50.0);
        let part_n = (200_000.0 * s).max(50.0);
        let ps_n = (800_000.0 * s).max(100.0);
        let ord_n = (1_500_000.0 * s).max(100.0);
        let li_n = (6_000_000.0 * s).max(200.0);

        let region = cat
            .table("region")
            .rows(5.0)
            .int_key("r_regionkey")
            .column("r_name", ColType::Str(12), ColStats::opaque(5.0))
            .clustered_on_first()
            .build();
        let nation = cat
            .table("nation")
            .rows(25.0)
            .int_key("n_nationkey")
            .column("n_name", ColType::Str(16), ColStats::opaque(25.0))
            .int_uniform("n_regionkey", 0, 4)
            .clustered_on_first()
            .build();
        let supplier = cat
            .table("supplier")
            .rows(sup_n)
            .int_key("s_suppkey")
            .int_uniform("s_nationkey", 0, 24)
            .column(
                "s_acctbal",
                ColType::Float,
                ColStats::uniform_float(-1000.0, 10_000.0, sup_n),
            )
            .column("s_pad", ColType::Str(120), ColStats::opaque(sup_n))
            .clustered_on_first()
            .build();
        let customer = cat
            .table("customer")
            .rows(cust_n)
            .int_key("c_custkey")
            .int_uniform("c_nationkey", 0, 24)
            .column("c_mktsegment", ColType::Str(10), ColStats::opaque(5.0))
            .column("c_pad", ColType::Str(140), ColStats::opaque(cust_n))
            .clustered_on_first()
            .build();
        let part = cat
            .table("part")
            .rows(part_n)
            .int_key("p_partkey")
            .int_uniform("p_size", 1, 50)
            .column(
                "p_retailprice",
                ColType::Float,
                ColStats::uniform_float(900.0, 2_100.0, 1_200.0),
            )
            .column("p_pad", ColType::Str(120), ColStats::opaque(part_n))
            .clustered_on_first()
            .build();
        let partsupp = cat
            .table("partsupp")
            .rows(ps_n)
            .column(
                "ps_partkey",
                ColType::Int,
                ColStats::uniform_int(0, part_n as i64 - 1, part_n),
            )
            .column(
                "ps_suppkey",
                ColType::Int,
                ColStats::uniform_int(0, sup_n as i64 - 1, sup_n),
            )
            .column(
                "ps_supplycost",
                ColType::Float,
                ColStats::uniform_float(1.0, 1_000.0, 1_000.0),
            )
            .int_uniform("ps_availqty", 1, 9_999)
            .column("ps_pad", ColType::Str(100), ColStats::opaque(ps_n))
            .clustered_on_first()
            .build();
        let orders = cat
            .table("orders")
            .rows(ord_n)
            .int_key("o_orderkey")
            .column(
                "o_custkey",
                ColType::Int,
                ColStats::uniform_int(0, cust_n as i64 - 1, cust_n),
            )
            .int_uniform("o_orderdate", 0, 2_405) // days of 1992-01-01..1998-08-02
            .int_uniform("o_shippriority", 0, 1)
            .column("o_pad", ColType::Str(70), ColStats::opaque(ord_n))
            .clustered_on_first()
            .build();
        let lineitem = cat
            .table("lineitem")
            .rows(li_n)
            .column(
                "l_orderkey",
                ColType::Int,
                ColStats::uniform_int(0, ord_n as i64 - 1, ord_n),
            )
            .column(
                "l_partkey",
                ColType::Int,
                ColStats::uniform_int(0, part_n as i64 - 1, part_n),
            )
            .column(
                "l_suppkey",
                ColType::Int,
                ColStats::uniform_int(0, sup_n as i64 - 1, sup_n),
            )
            .column(
                "l_extendedprice",
                ColType::Float,
                ColStats::uniform_float(900.0, 105_000.0, 100_000.0),
            )
            .column(
                "l_discount",
                ColType::Float,
                ColStats::uniform_float(0.0, 0.1, 11.0),
            )
            .int_uniform("l_shipdate", 0, 2_526)
            .column("l_returnflag", ColType::Str(1), ColStats::opaque(3.0))
            .int_uniform("l_quantity", 1, 50)
            .column("l_pad", ColType::Str(40), ColStats::opaque(li_n))
            .clustered_on_first()
            .build();

        let min_cost = cat.derived_column(
            "min_cost",
            ColType::Float,
            ColStats::uniform_float(1.0, 1_000.0, 1_000.0),
        );
        let value = cat.derived_column("value", ColType::Float, ColStats::opaque(part_n));
        let rev = cat.derived_column("rev", ColType::Float, ColStats::opaque(sup_n));
        let maxrev = cat.derived_column("maxrev", ColType::Float, ColStats::opaque(1.0));
        let rev3 = cat.derived_column("rev3", ColType::Float, ColStats::opaque(ord_n));
        let rev5 = cat.derived_column("rev5", ColType::Float, ColStats::opaque(25.0));
        let rev7 = cat.derived_column("rev7", ColType::Float, ColStats::opaque(25.0));
        let rev9 = cat.derived_column("rev9", ColType::Float, ColStats::opaque(25.0));
        let rev10 = cat.derived_column("rev10", ColType::Float, ColStats::opaque(cust_n));

        Tpcd {
            catalog: cat,
            scale,
            region,
            nation,
            supplier,
            customer,
            part,
            partsupp,
            orders,
            lineitem,
            min_cost,
            value,
            rev,
            maxrev,
            rev3,
            rev5,
            rev7,
            rev9,
            rev10,
        }
    }

    fn col(&self, t: &str, c: &str) -> ColId {
        self.catalog.col(t, c)
    }

    /// Projects a plan to named columns of a table — the paper's queries
    /// are SQL with explicit SELECT lists, so intermediate results carry
    /// only the referenced attributes (this is what makes materialized
    /// intermediates compact enough to share profitably).
    fn keep(&self, plan: LogicalPlan, table: &str, cols: &[&str]) -> LogicalPlan {
        plan.project(cols.iter().map(|c| self.col(table, c)).collect())
    }

    /// `partsupp ⋈ supplier ⋈ nation ⋈ σ_{r_name='EUROPE'}(region)` — the
    /// invariant shared by Q2's outer query and its nested subquery.
    fn q2_inner_invariant(&self) -> LogicalPlan {
        let ps_sup = Predicate::atom(Atom::eq_cols(
            self.col("partsupp", "ps_suppkey"),
            self.col("supplier", "s_suppkey"),
        ));
        let sup_nat = Predicate::atom(Atom::eq_cols(
            self.col("supplier", "s_nationkey"),
            self.col("nation", "n_nationkey"),
        ));
        let nat_reg = Predicate::atom(Atom::eq_cols(
            self.col("nation", "n_regionkey"),
            self.col("region", "r_regionkey"),
        ));
        let region_sel = self.keep(
            LogicalPlan::scan(self.region).select(Predicate::atom(Atom::cmp(
                self.col("region", "r_name"),
                CmpOp::Eq,
                "r_name_000001",
            ))),
            "region",
            &["r_regionkey"],
        );
        let partsupp = self.keep(
            LogicalPlan::scan(self.partsupp),
            "partsupp",
            &["ps_partkey", "ps_suppkey", "ps_supplycost"],
        );
        let supplier = self.keep(
            LogicalPlan::scan(self.supplier),
            "supplier",
            &["s_suppkey", "s_nationkey"],
        );
        let nation = self.keep(
            LogicalPlan::scan(self.nation),
            "nation",
            &["n_nationkey", "n_regionkey"],
        );
        partsupp
            .join(supplier, ps_sup)
            .join(nation, sup_nat)
            .join(region_sel, nat_reg)
    }

    /// The inner subquery only consumes `(ps_partkey, ps_supplycost)`;
    /// projecting the invariant down to those two columns is what makes
    /// materializing it cheap to reuse (the paper's optimizer likewise
    /// considered projected intermediates).
    fn q2_inner_projected(&self) -> LogicalPlan {
        self.q2_inner_invariant().project(vec![
            self.col("partsupp", "ps_partkey"),
            self.col("partsupp", "ps_supplycost"),
        ])
    }

    /// Number of invocations of Q2's nested subquery: one per part
    /// surviving `p_size = 15`.
    fn q2_invocations(&self) -> f64 {
        (self.catalog.table_ref(self.part).cardinality / 50.0).max(1.0)
    }

    /// TPC-D Q2 analogue with *correlated* evaluation: the outer query
    /// plus the nested min-cost subquery as a weight-`n` parameterized
    /// query (correlation `ps_partkey = :p`, paper §5).
    #[must_use]
    pub fn q2(&self) -> Batch {
        let outer = self
            .keep(
                LogicalPlan::scan(self.part).select(Predicate::atom(Atom::cmp(
                    self.col("part", "p_size"),
                    CmpOp::Eq,
                    15i64,
                ))),
                "part",
                &["p_partkey"],
            )
            .join(
                self.q2_inner_invariant(),
                Predicate::atom(Atom::eq_cols(
                    self.col("part", "p_partkey"),
                    self.col("partsupp", "ps_partkey"),
                )),
            );
        let inner = self
            .q2_inner_projected()
            .select(Predicate::atom(Atom::Param {
                col: self.col("partsupp", "ps_partkey"),
                op: CmpOp::Eq,
                param: ParamId(0),
            }))
            .aggregate(
                vec![],
                vec![AggExpr::new(
                    AggFunc::Min,
                    ScalarExpr::col(self.col("partsupp", "ps_supplycost")),
                    self.min_cost,
                )],
            );
        Batch::of(vec![
            Query::new("Q2-outer", outer),
            Query::invoked("Q2-inner", inner, self.q2_invocations()),
        ])
    }

    /// The §6.1 modified Q2: the correlation becomes `ps_partkey <> :p`
    /// (the `not in` form), which defeats decorrelation; only invariant
    /// materialization helps.
    #[must_use]
    pub fn q2_notin(&self) -> Batch {
        let mut batch = self.q2();
        let inner = self
            .q2_inner_projected()
            .select(Predicate::atom(Atom::Param {
                col: self.col("partsupp", "ps_partkey"),
                op: CmpOp::Ne,
                param: ParamId(0),
            }))
            .aggregate(
                vec![],
                vec![AggExpr::new(
                    AggFunc::Min,
                    ScalarExpr::col(self.col("partsupp", "ps_supplycost")),
                    self.min_cost,
                )],
            );
        batch.queries[1] = Query::invoked("Q2!=inner", inner, self.q2_invocations());
        batch
    }

    /// Q2-D: the manually decorrelated Q2 — a batch whose two queries
    /// share `partsupp ⋈ supplier ⋈ nation ⋈ σ(region)`.
    #[must_use]
    pub fn q2d(&self) -> Batch {
        // t = min cost per part over the shared join
        let t = self.q2_inner_invariant().aggregate(
            vec![self.col("partsupp", "ps_partkey")],
            vec![AggExpr::new(
                AggFunc::Min,
                ScalarExpr::col(self.col("partsupp", "ps_supplycost")),
                self.min_cost,
            )],
        );
        let qa = Query::new("Q2D-minexpr", t.clone());
        // outer block: σ(part) ⋈ shared join ⋈ t on supplycost = min_cost
        let outer = self
            .keep(
                LogicalPlan::scan(self.part).select(Predicate::atom(Atom::cmp(
                    self.col("part", "p_size"),
                    CmpOp::Eq,
                    15i64,
                ))),
                "part",
                &["p_partkey"],
            )
            .join(
                self.q2_inner_invariant(),
                Predicate::atom(Atom::eq_cols(
                    self.col("part", "p_partkey"),
                    self.col("partsupp", "ps_partkey"),
                )),
            )
            .project(vec![
                self.col("part", "p_partkey"),
                self.col("partsupp", "ps_supplycost"),
                self.col("supplier", "s_suppkey"),
            ])
            .join(
                t.project(vec![self.min_cost]),
                Predicate::atom(Atom::eq_cols(
                    self.col("partsupp", "ps_supplycost"),
                    self.min_cost,
                )),
            );
        let qb = Query::new("Q2D-outer", outer);
        Batch::of(vec![qa, qb])
    }

    /// Q11 analogue: value of German suppliers' stock grouped by part,
    /// and the grand total — two queries sharing
    /// `partsupp ⋈ supplier ⋈ σ(nation)` with an aggregate-subsumption
    /// opportunity between the group-by and the scalar total.
    #[must_use]
    pub fn q11(&self) -> Batch {
        let join = self
            .keep(
                LogicalPlan::scan(self.partsupp),
                "partsupp",
                &["ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty"],
            )
            .join(
                self.keep(
                    LogicalPlan::scan(self.supplier),
                    "supplier",
                    &["s_suppkey", "s_nationkey"],
                ),
                Predicate::atom(Atom::eq_cols(
                    self.col("partsupp", "ps_suppkey"),
                    self.col("supplier", "s_suppkey"),
                )),
            )
            .join(
                self.keep(
                    LogicalPlan::scan(self.nation).select(Predicate::atom(Atom::cmp(
                        self.col("nation", "n_name"),
                        CmpOp::Eq,
                        "n_name_000007",
                    ))),
                    "nation",
                    &["n_nationkey"],
                ),
                Predicate::atom(Atom::eq_cols(
                    self.col("supplier", "s_nationkey"),
                    self.col("nation", "n_nationkey"),
                )),
            );
        let agg_expr = ScalarExpr::col(self.col("partsupp", "ps_supplycost")).bin(
            ArithOp::Mul,
            ScalarExpr::col(self.col("partsupp", "ps_availqty")),
        );
        let by_part = join.clone().aggregate(
            vec![self.col("partsupp", "ps_partkey")],
            vec![AggExpr::new(AggFunc::Sum, agg_expr.clone(), self.value)],
        );
        let total = join.aggregate(
            vec![],
            vec![AggExpr::new(AggFunc::Sum, agg_expr, self.value)],
        );
        Batch::of(vec![
            Query::new("Q11-by-part", by_part),
            Query::new("Q11-total", total),
        ])
    }

    /// The revenue view of Q15: supplier revenue over a 90-day shipping
    /// window.
    fn revenue_view(&self) -> LogicalPlan {
        let d0 = 1_000i64;
        self.keep(
            LogicalPlan::scan(self.lineitem).select(Predicate::all(vec![
                Atom::cmp(self.col("lineitem", "l_shipdate"), CmpOp::Ge, d0),
                Atom::cmp(self.col("lineitem", "l_shipdate"), CmpOp::Lt, d0 + 90),
            ])),
            "lineitem",
            &["l_suppkey", "l_extendedprice", "l_discount"],
        )
        .aggregate(
            vec![self.col("lineitem", "l_suppkey")],
            vec![AggExpr::new(
                AggFunc::Sum,
                ScalarExpr::col(self.col("lineitem", "l_extendedprice")).bin(
                    ArithOp::Mul,
                    ScalarExpr::constant(1.0).bin(
                        ArithOp::Sub,
                        ScalarExpr::col(self.col("lineitem", "l_discount")),
                    ),
                ),
                self.rev,
            )],
        )
    }

    /// Q15 analogue: the `revenue` view used twice — once to find the
    /// maximum, once joined with `supplier`.
    #[must_use]
    pub fn q15(&self) -> Batch {
        let max_rev = self.revenue_view().aggregate(
            vec![],
            vec![AggExpr::new(
                AggFunc::Max,
                ScalarExpr::col(self.rev),
                self.maxrev,
            )],
        );
        let top_suppliers = self
            .keep(LogicalPlan::scan(self.supplier), "supplier", &["s_suppkey"])
            .join(
                self.revenue_view(),
                Predicate::atom(Atom::eq_cols(
                    self.col("supplier", "s_suppkey"),
                    self.col("lineitem", "l_suppkey"),
                )),
            );
        Batch::of(vec![
            Query::new("Q15-maxrev", max_rev),
            Query::new("Q15-join", top_suppliers),
        ])
    }

    // ------------------------------------------------------------------
    // Experiment 2: batch queries (each instantiated at two constants)

    fn q3_like(&self, date: i64) -> LogicalPlan {
        self.keep(
            LogicalPlan::scan(self.customer).select(Predicate::atom(Atom::cmp(
                self.col("customer", "c_mktsegment"),
                CmpOp::Eq,
                "c_mktsegment_000001",
            ))),
            "customer",
            &["c_custkey"],
        )
        .join(
            self.keep(
                LogicalPlan::scan(self.orders).select(Predicate::atom(Atom::cmp(
                    self.col("orders", "o_orderdate"),
                    CmpOp::Lt,
                    date,
                ))),
                "orders",
                &["o_orderkey", "o_custkey"],
            ),
            Predicate::atom(Atom::eq_cols(
                self.col("customer", "c_custkey"),
                self.col("orders", "o_custkey"),
            )),
        )
        .join(
            self.keep(
                LogicalPlan::scan(self.lineitem).select(Predicate::atom(Atom::cmp(
                    self.col("lineitem", "l_shipdate"),
                    CmpOp::Gt,
                    date,
                ))),
                "lineitem",
                &["l_orderkey", "l_extendedprice"],
            ),
            Predicate::atom(Atom::eq_cols(
                self.col("orders", "o_orderkey"),
                self.col("lineitem", "l_orderkey"),
            )),
        )
        .aggregate(
            vec![self.col("orders", "o_orderkey")],
            vec![AggExpr::new(
                AggFunc::Sum,
                ScalarExpr::col(self.col("lineitem", "l_extendedprice")),
                self.rev3,
            )],
        )
    }

    fn q5_like(&self, date: i64) -> LogicalPlan {
        self.keep(LogicalPlan::scan(self.customer), "customer", &["c_custkey"])
            .join(
                self.keep(
                    LogicalPlan::scan(self.orders).select(Predicate::all(vec![
                        Atom::cmp(self.col("orders", "o_orderdate"), CmpOp::Ge, date),
                        Atom::cmp(self.col("orders", "o_orderdate"), CmpOp::Lt, date + 365),
                    ])),
                    "orders",
                    &["o_orderkey", "o_custkey"],
                ),
                Predicate::atom(Atom::eq_cols(
                    self.col("customer", "c_custkey"),
                    self.col("orders", "o_custkey"),
                )),
            )
            .join(
                self.keep(
                    LogicalPlan::scan(self.lineitem),
                    "lineitem",
                    &["l_orderkey", "l_suppkey", "l_extendedprice"],
                ),
                Predicate::atom(Atom::eq_cols(
                    self.col("orders", "o_orderkey"),
                    self.col("lineitem", "l_orderkey"),
                )),
            )
            .join(
                self.keep(
                    LogicalPlan::scan(self.supplier),
                    "supplier",
                    &["s_suppkey", "s_nationkey"],
                ),
                Predicate::atom(Atom::eq_cols(
                    self.col("lineitem", "l_suppkey"),
                    self.col("supplier", "s_suppkey"),
                )),
            )
            .join(
                self.keep(
                    LogicalPlan::scan(self.nation),
                    "nation",
                    &["n_nationkey", "n_regionkey"],
                )
                .join(
                    self.keep(
                        LogicalPlan::scan(self.region).select(Predicate::atom(Atom::cmp(
                            self.col("region", "r_name"),
                            CmpOp::Eq,
                            "r_name_000002",
                        ))),
                        "region",
                        &["r_regionkey"],
                    ),
                    Predicate::atom(Atom::eq_cols(
                        self.col("nation", "n_regionkey"),
                        self.col("region", "r_regionkey"),
                    )),
                ),
                Predicate::atom(Atom::eq_cols(
                    self.col("supplier", "s_nationkey"),
                    self.col("nation", "n_nationkey"),
                )),
            )
            .aggregate(
                vec![self.col("nation", "n_nationkey")],
                vec![AggExpr::new(
                    AggFunc::Sum,
                    ScalarExpr::col(self.col("lineitem", "l_extendedprice")),
                    self.rev5,
                )],
            )
    }

    fn q7_like(&self, date: i64) -> LogicalPlan {
        self.keep(
            LogicalPlan::scan(self.supplier),
            "supplier",
            &["s_suppkey", "s_nationkey"],
        )
        .join(
            self.keep(
                LogicalPlan::scan(self.lineitem).select(Predicate::all(vec![
                    Atom::cmp(self.col("lineitem", "l_shipdate"), CmpOp::Ge, date),
                    Atom::cmp(self.col("lineitem", "l_shipdate"), CmpOp::Le, date + 730),
                ])),
                "lineitem",
                &["l_orderkey", "l_suppkey", "l_extendedprice"],
            ),
            Predicate::atom(Atom::eq_cols(
                self.col("supplier", "s_suppkey"),
                self.col("lineitem", "l_suppkey"),
            )),
        )
        .join(
            self.keep(
                LogicalPlan::scan(self.orders),
                "orders",
                &["o_orderkey", "o_custkey"],
            ),
            Predicate::atom(Atom::eq_cols(
                self.col("lineitem", "l_orderkey"),
                self.col("orders", "o_orderkey"),
            )),
        )
        .join(
            self.keep(LogicalPlan::scan(self.customer), "customer", &["c_custkey"]),
            Predicate::atom(Atom::eq_cols(
                self.col("orders", "o_custkey"),
                self.col("customer", "c_custkey"),
            )),
        )
        .join(
            self.keep(LogicalPlan::scan(self.nation), "nation", &["n_nationkey"]),
            Predicate::atom(Atom::eq_cols(
                self.col("supplier", "s_nationkey"),
                self.col("nation", "n_nationkey"),
            )),
        )
        .aggregate(
            vec![self.col("nation", "n_nationkey")],
            vec![AggExpr::new(
                AggFunc::Sum,
                ScalarExpr::col(self.col("lineitem", "l_extendedprice")),
                self.rev7,
            )],
        )
    }

    fn q9_like(&self, price: f64) -> LogicalPlan {
        self.keep(
            LogicalPlan::scan(self.part).select(Predicate::atom(Atom::cmp(
                self.col("part", "p_retailprice"),
                CmpOp::Ge,
                price,
            ))),
            "part",
            &["p_partkey"],
        )
        .join(
            self.keep(
                LogicalPlan::scan(self.lineitem),
                "lineitem",
                &["l_partkey", "l_suppkey", "l_extendedprice"],
            ),
            Predicate::atom(Atom::eq_cols(
                self.col("part", "p_partkey"),
                self.col("lineitem", "l_partkey"),
            )),
        )
        .join(
            self.keep(
                LogicalPlan::scan(self.supplier),
                "supplier",
                &["s_suppkey", "s_nationkey"],
            ),
            Predicate::atom(Atom::eq_cols(
                self.col("lineitem", "l_suppkey"),
                self.col("supplier", "s_suppkey"),
            )),
        )
        .join(
            self.keep(LogicalPlan::scan(self.nation), "nation", &["n_nationkey"]),
            Predicate::atom(Atom::eq_cols(
                self.col("supplier", "s_nationkey"),
                self.col("nation", "n_nationkey"),
            )),
        )
        .aggregate(
            vec![self.col("nation", "n_nationkey")],
            vec![AggExpr::new(
                AggFunc::Sum,
                ScalarExpr::col(self.col("lineitem", "l_extendedprice")),
                self.rev9,
            )],
        )
    }

    fn q10_like(&self, date: i64) -> LogicalPlan {
        self.keep(
            LogicalPlan::scan(self.customer),
            "customer",
            &["c_custkey", "c_nationkey"],
        )
        .join(
            self.keep(
                LogicalPlan::scan(self.orders).select(Predicate::all(vec![
                    Atom::cmp(self.col("orders", "o_orderdate"), CmpOp::Ge, date),
                    Atom::cmp(self.col("orders", "o_orderdate"), CmpOp::Lt, date + 90),
                ])),
                "orders",
                &["o_orderkey", "o_custkey"],
            ),
            Predicate::atom(Atom::eq_cols(
                self.col("customer", "c_custkey"),
                self.col("orders", "o_custkey"),
            )),
        )
        .join(
            self.keep(
                LogicalPlan::scan(self.lineitem).select(Predicate::atom(Atom::cmp(
                    self.col("lineitem", "l_returnflag"),
                    CmpOp::Eq,
                    "l_returnflag_000002",
                ))),
                "lineitem",
                &["l_orderkey", "l_extendedprice"],
            ),
            Predicate::atom(Atom::eq_cols(
                self.col("orders", "o_orderkey"),
                self.col("lineitem", "l_orderkey"),
            )),
        )
        .join(
            self.keep(LogicalPlan::scan(self.nation), "nation", &["n_nationkey"]),
            Predicate::atom(Atom::eq_cols(
                self.col("customer", "c_nationkey"),
                self.col("nation", "n_nationkey"),
            )),
        )
        .aggregate(
            vec![self.col("customer", "c_custkey")],
            vec![AggExpr::new(
                AggFunc::Sum,
                ScalarExpr::col(self.col("lineitem", "l_extendedprice")),
                self.rev10,
            )],
        )
    }

    /// One of the paper's batch component queries, instantiated twice
    /// with different selection constants.
    fn component_pair(&self, i: usize) -> Vec<Query> {
        match i {
            0 => vec![
                Query::new("Q3a", self.q3_like(1_200)),
                Query::new("Q3b", self.q3_like(1_500)),
            ],
            1 => vec![
                Query::new("Q5a", self.q5_like(365)),
                Query::new("Q5b", self.q5_like(730)),
            ],
            2 => vec![
                Query::new("Q7a", self.q7_like(730)),
                Query::new("Q7b", self.q7_like(1_095)),
            ],
            3 => vec![
                Query::new("Q9a", self.q9_like(1_500.0)),
                Query::new("Q9b", self.q9_like(1_800.0)),
            ],
            4 => vec![
                Query::new("Q10a", self.q10_like(600)),
                Query::new("Q10b", self.q10_like(900)),
            ],
            _ => panic!("component index out of range"),
        }
    }

    /// Composite batch query `BQi` (Experiment 2): the first `i` of
    /// {Q3, Q5, Q7, Q9, Q10}, each repeated at two selection constants.
    ///
    /// # Panics
    ///
    /// Panics unless `i` is in `1..=5`.
    #[must_use]
    pub fn bq(&self, i: usize) -> Batch {
        assert!((1..=5).contains(&i), "BQ1..BQ5");
        let mut qs = Vec::new();
        for k in 0..i {
            qs.extend(self.component_pair(k));
        }
        Batch::of(qs)
    }

    /// The steady-state **serving** scenario: a stream of batches where
    /// consecutive batches overlap, the shape a long-lived
    /// `MqoSession` (the `mqo-session` crate) sees in production. Batch `i`
    /// holds the component pairs of queries `i mod 5` and `(i+1) mod 5`
    /// from the Experiment-2 pool (Q3, Q5, Q7, Q9, Q10, each at two
    /// selection constants — four queries per batch), so every batch
    /// shares one whole pair with its predecessor: a warm
    /// materialized-view cache should serve those subexpressions without
    /// recomputation, while the new pair keeps the optimizer honest.
    #[must_use]
    pub fn serving_batches(&self, rounds: usize) -> Vec<Batch> {
        (0..rounds)
            .map(|i| {
                let mut qs = self.component_pair(i % 5);
                qs.extend(self.component_pair((i + 1) % 5));
                Batch::of(qs)
            })
            .collect()
    }

    /// All stand-alone Experiment-1 batches with their paper names.
    #[must_use]
    pub fn standalone(&self) -> Vec<(&'static str, Batch)> {
        vec![
            ("Q2", self.q2()),
            ("Q2-D", self.q2d()),
            ("Q11", self.q11()),
            ("Q15", self.q15()),
        ]
    }
}

/// The §6.4 no-sharing control: the five batch queries over disjoint
/// renamed copies of the schema — MQO finds nothing sharable and must
/// cost (almost) nothing extra.
#[must_use]
pub fn no_overlap() -> (Catalog, Batch) {
    let mut cat = Catalog::new();
    let mut queries = Vec::new();
    for (qi, name) in ["q3", "q5", "q7", "q9", "q10"].iter().enumerate() {
        // a private 3-relation chain per query: a ⋈ b ⋈ c with a filter
        let a = cat
            .table(&format!("{name}_a"))
            .rows(150_000.0)
            .int_key("ak")
            .int_uniform("av", 0, 999)
            .clustered_on_first()
            .build();
        let b = cat
            .table(&format!("{name}_b"))
            .rows(300_000.0)
            .int_key("bk")
            .int_uniform("afk", 0, 149_999)
            .clustered_on_first()
            .build();
        let c = cat
            .table(&format!("{name}_c"))
            .rows(75_000.0)
            .int_key("ck")
            .int_uniform("bfk", 0, 299_999)
            .clustered_on_first()
            .build();
        let jab = Predicate::atom(Atom::eq_cols(
            cat.col(&format!("{name}_a"), "ak"),
            cat.col(&format!("{name}_b"), "afk"),
        ));
        let jbc = Predicate::atom(Atom::eq_cols(
            cat.col(&format!("{name}_b"), "bk"),
            cat.col(&format!("{name}_c"), "bfk"),
        ));
        let plan = LogicalPlan::scan(a)
            .select(Predicate::atom(Atom::cmp(
                cat.col(&format!("{name}_a"), "av"),
                CmpOp::Lt,
                (100 + 50 * qi) as i64,
            )))
            .join(LogicalPlan::scan(b), jab)
            .join(LogicalPlan::scan(c), jbc);
        queries.push(Query::new(format!("{name}-iso"), plan));
    }
    (cat, Batch::of(queries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_logical::validate;

    #[test]
    fn all_tpcd_queries_validate() {
        let w = Tpcd::new(1.0);
        let mut batches: Vec<(String, Batch)> = w
            .standalone()
            .into_iter()
            .map(|(n, b)| (n.to_string(), b))
            .collect();
        batches.push(("Q2!=".into(), w.q2_notin()));
        for i in 1..=5 {
            batches.push((format!("BQ{i}"), w.bq(i)));
        }
        for (name, batch) in batches {
            assert!(!batch.is_empty(), "{name} empty");
            for q in &batch.queries {
                validate(&q.plan, &w.catalog).unwrap_or_else(|e| panic!("{name}/{}: {e}", q.label));
            }
        }
    }

    #[test]
    fn scale_controls_cardinalities() {
        let w1 = Tpcd::new(1.0);
        let w100 = Tpcd::new(100.0);
        let li1 = w1.catalog.table_ref(w1.lineitem).cardinality;
        let li100 = w100.catalog.table_ref(w100.lineitem).cardinality;
        assert!((li100 / li1 - 100.0).abs() < 1e-9);
        assert_eq!(li1, 6_000_000.0);
    }

    #[test]
    fn q2_inner_is_weighted_and_parameterized() {
        let w = Tpcd::new(1.0);
        let b = w.q2();
        assert_eq!(b.len(), 2);
        assert_eq!(b.queries[1].weight, 4_000.0);
        // the inner query has a Param select somewhere
        let mut has_param = false;
        b.queries[1].plan.walk(&mut |p| {
            if let LogicalPlan::Select { pred, .. } = p {
                has_param |= pred.has_param();
            }
        });
        assert!(has_param);
    }

    #[test]
    fn bq_sizes_grow_by_pairs() {
        let w = Tpcd::new(1.0);
        for i in 1..=5 {
            assert_eq!(w.bq(i).len(), 2 * i);
        }
    }

    #[test]
    fn no_overlap_has_disjoint_tables() {
        let (cat, batch) = no_overlap();
        let mut seen = std::collections::HashSet::new();
        for q in &batch.queries {
            for t in q.plan.tables() {
                assert!(seen.insert(t), "table shared between queries");
            }
            validate(&q.plan, &cat).unwrap();
        }
        assert_eq!(batch.len(), 5);
    }
}
