//! Workloads reproducing the paper's experimental setup (§6).
//!
//! * [`Tpcd`] — a TPC-D-like schema with the benchmark's scale-1 row
//!   counts and the stand-alone queries of Experiment 1 (Q2 correlated,
//!   Q2-D decorrelated, the `not in` variant, Q11, Q15) plus the batch
//!   queries of Experiment 2 (Q3, Q5, Q7, Q9, Q10 → composites BQ1..BQ5).
//!   The SQL text is not reproduced verbatim — the algorithms consume
//!   logical plans — but each query's join graph, selection structure and
//!   the *source of common subexpressions* match the originals
//!   (substitution documented in `DESIGN.md`).
//! * [`Scaleup`] — the §6.2 synthetic schema: relations `PSP1..PSP22`
//!   (20k–40k tuples, 25 tuples/block, no indexes), chain-join component
//!   queries `SQ1..SQ18` (each a pair differing in a selection constant),
//!   composites `CQ1..CQ5`.
//! * [`no_overlap`] — the §6.4 batch with renamed relations and zero
//!   sharing, used to measure pure optimizer overhead.

mod scaleup;
mod tpcd;

pub use scaleup::Scaleup;
pub use tpcd::{no_overlap, Tpcd};
