//! Deterministic iteration adapters over hash containers.
//!
//! Hash-map iteration order depends on the hasher, the insertion
//! history, and (for `RandomState`) per-process seeds. Any plan- or
//! cost-producing code that folds over a map in hash order is a latent
//! nondeterminism bug: floating-point accumulation is not associative,
//! so two runs can disagree by an ULP and a comparison can flip (this
//! bit the `MatSet` cost sums once already). The `mqo-analyze`
//! `hash-iteration` lint bans raw iteration over hash containers in
//! ordered crates; these adapters are the sanctioned escape hatch —
//! they materialize the entries and sort by key, so the traversal
//! order is a function of the *contents* only.
//!
//! The adapters take the std types with any hasher (`HashMap<K, V, S>`),
//! so they work on both [`crate::FxHashMap`] and plain `HashMap`. They
//! allocate one `Vec` per call; on hot paths that is the price of a
//! reproducible answer, and every current call site folds over the whole
//! container anyway.

use std::collections::{HashMap, HashSet};

/// The map's keys, sorted ascending.
#[must_use]
pub fn sorted_keys<K: Ord, V, S>(map: &HashMap<K, V, S>) -> Vec<&K> {
    let mut keys: Vec<&K> = map.keys().collect();
    keys.sort();
    keys
}

/// The map's `(key, value)` pairs, sorted ascending by key.
#[must_use]
pub fn sorted_entries<K: Ord, V, S>(map: &HashMap<K, V, S>) -> Vec<(&K, &V)> {
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    entries
}

/// The set's items, sorted ascending.
#[must_use]
pub fn sorted_items<K: Ord, S>(set: &HashSet<K, S>) -> Vec<&K> {
    let mut items: Vec<&K> = set.iter().collect();
    items.sort();
    items
}

/// Consumes the map and returns its `(key, value)` pairs, sorted
/// ascending by key. For the end-of-scope case where the values need to
/// move out of the container.
#[must_use]
pub fn into_sorted_entries<K: Ord, V, S>(map: HashMap<K, V, S>) -> Vec<(K, V)> {
    let mut entries: Vec<(K, V)> = map.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FxHashMap, FxHashSet};

    #[test]
    fn keys_and_entries_are_key_sorted() {
        let mut m = FxHashMap::<u32, &str>::default();
        for (k, v) in [(3, "c"), (1, "a"), (2, "b")] {
            m.insert(k, v);
        }
        assert_eq!(sorted_keys(&m), [&1, &2, &3]);
        assert_eq!(sorted_entries(&m), [(&1, &"a"), (&2, &"b"), (&3, &"c")],);
        assert_eq!(into_sorted_entries(m), [(1, "a"), (2, "b"), (3, "c")]);
    }

    #[test]
    fn set_items_are_sorted() {
        let mut s = FxHashSet::<i64>::default();
        for k in [5, -1, 3] {
            s.insert(k);
        }
        assert_eq!(sorted_items(&s), [&-1, &3, &5]);
    }

    #[test]
    fn order_is_contents_only_not_insertion_history() {
        // Two maps with the same contents but different insertion
        // histories (and a churned entry) must traverse identically.
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for k in 0..64u64 {
            a.insert(k, k * 10);
        }
        for k in (0..64u64).rev() {
            b.insert(k, k * 10);
        }
        b.insert(999, 0);
        b.remove(&999);
        assert_eq!(sorted_entries(&a), sorted_entries(&b));
    }
}
