//! Union-find (disjoint sets) with path halving and union by size.
//!
//! DAG unification merges equivalence nodes; stale group ids held by
//! operation nodes are resolved through this structure.

/// Disjoint-set forest over dense `usize` elements.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates an empty forest.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements ever added.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if no element was added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Adds a new singleton element and returns its index.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id as u32);
        self.size.push(1);
        id
    }

    /// Finds the representative of `x`, compressing paths along the way.
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            // Path halving: point x at its grandparent.
            let gp = self.parent[p];
            self.parent[x] = gp;
            x = gp as usize;
        }
    }

    /// Finds the representative without mutating (no path compression).
    #[must_use]
    pub fn find_const(&self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            x = self.parent[x] as usize;
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns the surviving representative.
    ///
    /// The larger set's representative survives, which keeps find chains
    /// short when unification cascades.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (win, lose) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lose] = win as u32;
        self.size[win] += self.size[lose];
        win
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_roots() {
        let mut uf = UnionFind::new();
        let a = uf.push();
        let b = uf.push();
        assert_eq!(uf.find(a), a);
        assert_eq!(uf.find(b), b);
        assert!(!uf.same(a, b));
    }

    #[test]
    fn union_merges_and_is_idempotent() {
        let mut uf = UnionFind::new();
        let ids: Vec<usize> = (0..8).map(|_| uf.push()).collect();
        uf.union(ids[0], ids[1]);
        uf.union(ids[2], ids[3]);
        assert!(uf.same(ids[0], ids[1]));
        assert!(!uf.same(ids[1], ids[2]));
        let r1 = uf.union(ids[1], ids[3]);
        let r2 = uf.union(ids[0], ids[2]);
        assert_eq!(r1, r2);
        assert!(uf.same(ids[0], ids[3]));
    }

    #[test]
    fn larger_set_representative_survives() {
        let mut uf = UnionFind::new();
        let ids: Vec<usize> = (0..4).map(|_| uf.push()).collect();
        let big = uf.union(ids[0], ids[1]); // size 2
        let merged = uf.union(big, ids[2]); // 2 vs 1: big survives
        assert_eq!(merged, big);
    }

    #[test]
    fn find_const_agrees_with_find() {
        let mut uf = UnionFind::new();
        let ids: Vec<usize> = (0..16).map(|_| uf.push()).collect();
        for w in ids.windows(2) {
            uf.union(w[0], w[1]);
        }
        for &i in &ids {
            assert_eq!(uf.find_const(i), uf.find(i));
        }
    }
}
