//! A minimal scoped worker pool over `std::thread::scope` (no external
//! thread-pool dependency — the workspace builds offline).
//!
//! The pool is built for *stateful* workers: each worker owns local
//! mutable state (e.g. a cost-table replica) created once at spawn and
//! carried across jobs. Jobs are addressed to a specific worker
//! ([`ScopedWorkerPool::send`]) or broadcast to all
//! ([`ScopedWorkerPool::broadcast`]); each worker drains its own FIFO
//! queue, so per-worker job order is preserved — a broadcast state
//! update sent before a job is always applied before that job runs.
//!
//! Because the pool lives inside a [`std::thread::scope`], worker
//! closures may freely borrow from the enclosing stack frame (the DAG,
//! the options, …). Workers exit when the pool is dropped (the job
//! senders close); create the pool inside the scope closure so it is
//! dropped before the scope joins.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::Scope;

/// `std::thread::available_parallelism()` with a fallback of 1.
#[must_use]
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The `MQO_THREADS` override, read from the environment once per
/// process and cached (environment reads outside a `*_from_env`
/// constructor are banned by `mqo-analyze`'s env-read lint; a cached
/// read also keeps every pool in the process sized consistently even if
/// a test harness mutates the variable mid-run). `None` when unset or
/// not a positive integer.
fn threads_from_env() -> Option<usize> {
    static CACHE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("MQO_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Resolves a requested thread count: a positive request wins; `0` means
/// *auto* — the `MQO_THREADS` environment variable if set to a positive
/// integer (read once per process via `threads_from_env`), otherwise
/// [`available_parallelism`].
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    threads_from_env().unwrap_or_else(available_parallelism)
}

/// A fixed set of scoped worker threads, each running a stateful job
/// handler. `Job`s flow to workers over per-worker channels; handler
/// outputs (for jobs that produce one) flow back over a shared channel
/// read with [`ScopedWorkerPool::recv`].
pub struct ScopedWorkerPool<Job, Out> {
    jobs: Vec<Sender<Job>>,
    out: Receiver<Out>,
}

impl<Job: Send, Out: Send> ScopedWorkerPool<Job, Out> {
    /// Spawns `threads` workers (at least one) on `scope`. `make_worker`
    /// runs on the calling thread once per worker and returns the
    /// worker's job handler, which owns any worker-local state. A handler
    /// returning `Some(out)` sends `out` back to the pool owner; `None`
    /// is a fire-and-forget job (e.g. a state update).
    pub fn spawn<'scope, F, W>(
        scope: &'scope Scope<'scope, '_>,
        threads: usize,
        mut make_worker: F,
    ) -> Self
    where
        Job: 'scope,
        Out: 'scope,
        F: FnMut(usize) -> W,
        W: FnMut(Job) -> Option<Out> + Send + 'scope,
    {
        let (out_tx, out) = channel();
        let jobs = (0..threads.max(1))
            .map(|i| {
                let (tx, rx) = channel::<Job>();
                let mut worker = make_worker(i);
                let out_tx = out_tx.clone();
                scope.spawn(move || {
                    for job in rx {
                        if let Some(resp) = worker(job) {
                            if out_tx.send(resp).is_err() {
                                return; // pool dropped mid-flight
                            }
                        }
                    }
                });
                tx
            })
            .collect();
        ScopedWorkerPool { jobs, out }
    }

    /// Number of workers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Always false: the pool spawns at least one worker.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Queues a job on worker `worker` (indices `0..len()`).
    ///
    /// # Panics
    ///
    /// Panics if the worker already exited (its job channel is closed).
    pub fn send(&self, worker: usize, job: Job) {
        self.jobs[worker]
            .send(job)
            .expect("worker thread exited with jobs pending");
    }

    /// Queues a copy of `job` on every worker, in worker order.
    ///
    /// # Panics
    ///
    /// Panics if a worker already exited (its job channel is closed).
    pub fn broadcast(&self, job: &Job)
    where
        Job: Clone,
    {
        for tx in &self.jobs {
            tx.send(job.clone())
                .expect("worker thread exited with jobs pending");
        }
    }

    /// Receives one handler output, blocking until available. Outputs
    /// arrive in completion order, not submission order — tag jobs with
    /// an index if order matters.
    ///
    /// # Panics
    ///
    /// Panics if every worker exited with results still pending.
    #[must_use]
    pub fn recv(&self) -> Out {
        self.out
            .recv()
            .expect("all worker threads exited with results pending")
    }

    /// Receives exactly `n` outputs (completion order).
    #[must_use]
    pub fn collect(&self, n: usize) -> Vec<Out> {
        (0..n).map(|_| self.recv()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_positive_request_wins() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
    }

    #[test]
    fn resolve_auto_is_positive() {
        // 0 resolves to MQO_THREADS or the machine's parallelism — both
        // positive; exact value depends on the environment.
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn sharded_jobs_return_tagged_results() {
        let items: Vec<u64> = (0..100).collect();
        let total: u64 = items.iter().sum();
        let got: u64 = std::thread::scope(|scope| {
            let pool: ScopedWorkerPool<(usize, Vec<u64>), u64> =
                ScopedWorkerPool::spawn(scope, 4, |_| {
                    |(_, chunk): (usize, Vec<u64>)| Some(chunk.iter().sum())
                });
            assert_eq!(pool.len(), 4);
            let mut sent = 0;
            for (i, chunk) in items.chunks(25).enumerate() {
                pool.send(i, (i, chunk.to_vec()));
                sent += 1;
            }
            pool.collect(sent).into_iter().sum()
        });
        assert_eq!(got, total);
    }

    #[test]
    fn workers_keep_state_and_apply_broadcasts_in_order() {
        // Each worker accumulates broadcast increments into local state;
        // a later query job must observe all earlier broadcasts (FIFO per
        // worker).
        std::thread::scope(|scope| {
            let pool: ScopedWorkerPool<Option<u64>, u64> =
                ScopedWorkerPool::spawn(scope, 3, |_| {
                    let mut acc = 0u64;
                    move |job: Option<u64>| match job {
                        Some(x) => {
                            acc += x;
                            None
                        }
                        None => Some(acc),
                    }
                });
            pool.broadcast(&Some(5));
            pool.broadcast(&Some(7));
            for w in 0..pool.len() {
                pool.send(w, None);
            }
            let answers = pool.collect(pool.len());
            assert_eq!(answers, vec![12, 12, 12]);
        });
    }

    #[test]
    fn workers_can_borrow_the_enclosing_frame() {
        let data = vec![1u64, 2, 3, 4];
        let sum: u64 = std::thread::scope(|scope| {
            let pool: ScopedWorkerPool<usize, u64> = ScopedWorkerPool::spawn(scope, 2, |_| {
                let data = &data;
                move |i: usize| Some(data[i])
            });
            for i in 0..data.len() {
                pool.send(i % 2, i);
            }
            pool.collect(data.len()).into_iter().sum()
        });
        assert_eq!(sum, 10);
    }
}
