//! FxHash-style hasher (the algorithm used by rustc).
//!
//! Our hash maps are keyed by small integer ids and short byte strings;
//! SipHash's DoS resistance buys nothing here and costs measurably on the
//! DAG hot paths (operation-key lookups during expansion). This is the
//! standard multiply-rotate-xor construction.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher suitable for integer-heavy keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        let mut h1 = FxHasher::default();
        h1.write_u64(1);
        let mut h2 = FxHasher::default();
        h2.write_u64(2);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn byte_stream_matches_chunked_writes() {
        // Same byte content must hash identically regardless of how it is
        // split across `write` calls of whole 8-byte words.
        let bytes: Vec<u8> = (0..32).collect();
        let mut h1 = FxHasher::default();
        h1.write(&bytes);
        let mut h2 = FxHasher::default();
        h2.write(&bytes[..16]);
        h2.write(&bytes[16..]);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(11, "eleven");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.get(&11), Some(&"eleven"));
        assert_eq!(m.get(&13), None);
    }
}
