//! A compact, growable bitset used for base-relation sets.
//!
//! Queries in this workspace touch at most a few dozen base relations, so
//! the common case is a single `u64` word; the representation stays inline
//! until more than 64 bits are needed.

/// Growable set of small `usize` elements backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set containing exactly `bit`.
    #[must_use]
    pub fn singleton(bit: usize) -> Self {
        let mut s = Self::new();
        s.insert(bit);
        s
    }

    /// Inserts `bit`; returns true if it was newly inserted.
    pub fn insert(&mut self, bit: usize) -> bool {
        let (w, b) = (bit / 64, bit % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// True if `bit` is a member.
    #[must_use]
    pub fn contains(&self, bit: usize) -> bool {
        let (w, b) = (bit / 64, bit % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut words = vec![0; self.words.len().max(other.words.len())];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words.get(i).copied().unwrap_or(0) | other.words.get(i).copied().unwrap_or(0);
        }
        let mut s = Self { words };
        s.normalize();
        s
    }

    /// True if `self` and `other` share at least one member.
    #[must_use]
    pub fn intersects(&self, other: &Self) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// True if every member of `self` is in `other`.
    #[must_use]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterates members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Drops trailing zero words so equal sets compare/hash equal.
    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = Self::new();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len() {
        let mut s = BitSet::new();
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(130));
        assert!(s.contains(3));
        assert!(s.contains(130));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_and_subset() {
        let a: BitSet = [1, 2, 65].into_iter().collect();
        let b: BitSet = [2, 3].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 65]);
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
        assert!(!u.is_subset(&a));
        assert!(a.intersects(&b));
        let c = BitSet::singleton(77);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn equal_content_equal_hash_despite_growth() {
        use std::hash::{BuildHasher, RandomState};
        let mut a = BitSet::new();
        a.insert(200);
        // Force growth then compare against union-produced set with the
        // same content: trailing words must not affect Eq/Hash.
        let b = BitSet::singleton(200).union(&BitSet::new());
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        a.words.resize(4, 0);
        a.normalize();
        assert_eq!(a, b);
        let s = RandomState::new();
        assert_eq!(s.hash_one(&a), s.hash_one(&b));
    }

    #[test]
    fn iter_is_sorted() {
        let s: BitSet = [9, 1, 70, 3].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 9, 70]);
    }
}
