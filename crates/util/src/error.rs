//! The unified recoverable error of the MQO pipeline: [`MqoError`].
//!
//! Before the robustness layer, every malformed plan, missing temp, or
//! exhausted budget was a panic buried in a hot path — acceptable for a
//! figure binary, fatal for a serving session. [`MqoError`] is the one
//! typed currency every stage speaks: staged (like `mqo-verify`'s
//! `VerifyError`), kinded (match on [`MqoErrorKind`] in tests and retry
//! logic), and rendered in the same caret style as the verifier and the
//! SQL front end, so a failed `submit` reads like a compiler diagnostic
//! rather than a backtrace.
//!
//! The type lives in `mqo-util` — the lowest layer — so `mqo-core`
//! (search), `mqo-exec` (execution, cache admission), `mqo-session`
//! (the serving facade), and `mqo-chaos` (fault injection) can all
//! construct and propagate it without dependency cycles.

use std::fmt;

/// Pipeline stage an error belongs to — mirrors `VerifyStage`, but over
/// the *runtime* pipeline (a serving submit) rather than the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorStage {
    /// DAG expansion / physicalization / fingerprinting.
    Plan,
    /// The materialization-set search (any strategy).
    Search,
    /// Plan extraction from a converged state.
    Extract,
    /// Plan execution (temp builds and query evaluation).
    Execute,
    /// MV-store admission/eviction.
    Admission,
    /// Session-level orchestration (warm lookup, store verification).
    Session,
    /// The multi-tenant serving front: batch forming, commit-actor
    /// traffic, snapshot reads, and the TCP protocol.
    Serve,
}

impl fmt::Display for ErrorStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorStage::Plan => "plan",
            ErrorStage::Search => "search",
            ErrorStage::Extract => "extract",
            ErrorStage::Execute => "execute",
            ErrorStage::Admission => "admission",
            ErrorStage::Session => "session",
            ErrorStage::Serve => "serve",
        };
        f.write_str(s)
    }
}

/// The failure taxonomy. Every variant is either produced by a
/// converted panic path, the resource governor, or an injected fault —
/// see DESIGN.md's "Robustness layer" table for the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MqoErrorKind {
    /// No strategy with the requested name is registered.
    UnknownStrategy,
    /// A strategy with this name is already registered.
    DuplicateStrategy,
    /// The per-submit wall-clock budget expired past the point where
    /// graceful degradation could absorb it (executor mid-query).
    TimeBudgetExpired,
    /// The per-submit memory budget was exceeded by intermediate
    /// results during execution.
    MemBudgetExceeded,
    /// A structurally broken plan was discovered at run time: a node
    /// with no recorded choice, a reuse of a never-materialized temp,
    /// an unexecutable pseudo-root.
    PlanBroken,
    /// A plan reads a warm temp that has no live seed — the cache state
    /// the plan was extracted against is gone.
    MissingSeed,
    /// A deterministic failpoint (`mqo-chaos`) fired.
    FaultInjected,
    /// A runtime invariant check failed at a recoverable boundary
    /// (e.g. MV-store accounting after admission).
    InvariantViolated,
    /// Canonical fingerprinting of the expanded DAG failed, so
    /// cross-batch cache identity cannot be established.
    FingerprintUnstable,
    /// A malformed or out-of-contract frame on the serving protocol
    /// (bad magic, oversized length, unknown opcode, missing Hello).
    Protocol,
    /// The serving front is shutting down (or has shut down): the
    /// submission was rejected or abandoned rather than processed.
    Shutdown,
    /// A SQL statement failed to parse or plan; the caret diagnostic is
    /// carried in `detail`.
    Sql,
    /// A tenant hit its in-flight cap at the batch former — the
    /// submission was rejected for backpressure, not for being wrong.
    Overloaded,
}

impl MqoErrorKind {
    /// Short stable name used in rendered diagnostics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MqoErrorKind::UnknownStrategy => "unknown-strategy",
            MqoErrorKind::DuplicateStrategy => "duplicate-strategy",
            MqoErrorKind::TimeBudgetExpired => "time-budget-expired",
            MqoErrorKind::MemBudgetExceeded => "mem-budget-exceeded",
            MqoErrorKind::PlanBroken => "plan-broken",
            MqoErrorKind::MissingSeed => "missing-seed",
            MqoErrorKind::FaultInjected => "fault-injected",
            MqoErrorKind::InvariantViolated => "invariant-violated",
            MqoErrorKind::FingerprintUnstable => "fingerprint-unstable",
            MqoErrorKind::Protocol => "protocol",
            MqoErrorKind::Shutdown => "shutdown",
            MqoErrorKind::Sql => "sql",
            MqoErrorKind::Overloaded => "overloaded",
        }
    }
}

/// One recoverable pipeline error: the failure class, the stage it
/// surfaced in, the object or seam it anchors to, a one-line detail
/// shown as the "source line" of the caret diagnostic, and the message.
#[derive(Debug, Clone)]
pub struct MqoError {
    /// The failure class (match on this in tests and retry logic).
    pub kind: MqoErrorKind,
    /// The pipeline stage the failure surfaced in.
    pub stage: ErrorStage,
    /// The offending object or seam (a node id, a seam name, a strategy
    /// name; may be empty).
    pub site: String,
    /// A rendered one-line description shown under the location line
    /// (may be empty — the site is shown instead).
    pub detail: String,
    /// Human-readable explanation.
    pub message: String,
}

impl MqoError {
    /// Builds an error.
    pub fn new(
        kind: MqoErrorKind,
        stage: ErrorStage,
        site: impl Into<String>,
        detail: impl Into<String>,
        message: impl Into<String>,
    ) -> MqoError {
        MqoError {
            kind,
            stage,
            site: site.into(),
            detail: detail.into(),
            message: message.into(),
        }
    }

    /// An injected-fault error: `seam` names the failpoint, `nth` is
    /// how many times that seam had been hit when it fired.
    #[must_use]
    pub fn fault(stage: ErrorStage, seam: &str, nth: u64) -> MqoError {
        MqoError::new(
            MqoErrorKind::FaultInjected,
            stage,
            seam,
            format!("failpoint {seam} fired on hit #{nth}"),
            format!("injected fault at seam `{seam}`"),
        )
    }

    /// A wall-clock budget expiry that could not degrade gracefully.
    #[must_use]
    pub fn time_budget(stage: ErrorStage, site: impl Into<String>) -> MqoError {
        MqoError::new(
            MqoErrorKind::TimeBudgetExpired,
            stage,
            site,
            "",
            "per-submit time budget expired",
        )
    }

    /// A memory budget violation during execution.
    #[must_use]
    pub fn mem_budget(site: impl Into<String>, used: usize, budget: usize) -> MqoError {
        MqoError::new(
            MqoErrorKind::MemBudgetExceeded,
            ErrorStage::Execute,
            site,
            format!("{used} bytes of intermediates against a budget of {budget}"),
            "per-submit memory budget exceeded",
        )
    }

    /// A structurally broken plan discovered at run time.
    #[must_use]
    pub fn plan_broken(site: impl Into<String>, message: impl Into<String>) -> MqoError {
        MqoError::new(
            MqoErrorKind::PlanBroken,
            ErrorStage::Execute,
            site,
            "",
            message,
        )
    }

    /// A runtime invariant violation at a recoverable boundary.
    #[must_use]
    pub fn invariant(
        stage: ErrorStage,
        site: impl Into<String>,
        message: impl Into<String>,
    ) -> MqoError {
        MqoError::new(MqoErrorKind::InvariantViolated, stage, site, "", message)
    }

    /// A serving-protocol violation (the connection is torn down; the
    /// shared session state is untouched).
    #[must_use]
    pub fn protocol(site: impl Into<String>, message: impl Into<String>) -> MqoError {
        MqoError::new(MqoErrorKind::Protocol, ErrorStage::Serve, site, "", message)
    }

    /// A submission rejected or abandoned because the serving front is
    /// shutting down.
    #[must_use]
    pub fn shutdown(site: impl Into<String>, message: impl Into<String>) -> MqoError {
        MqoError::new(MqoErrorKind::Shutdown, ErrorStage::Serve, site, "", message)
    }

    /// True for governor errors (time or memory budget) — the classes
    /// the executor degrades on (abort the query) instead of failing
    /// the whole submit.
    #[must_use]
    pub fn is_budget(&self) -> bool {
        matches!(
            self.kind,
            MqoErrorKind::TimeBudgetExpired | MqoErrorKind::MemBudgetExceeded
        )
    }

    /// Renders a caret diagnostic in the same shape as
    /// `VerifyError::render` and `SqlError::render`:
    ///
    /// ```text
    /// error[fault-injected]: injected fault at seam `temp-build`
    ///   --> stage execute, site temp-build
    ///    | failpoint temp-build fired on hit #3
    ///    | ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        let site = if self.site.is_empty() {
            "-"
        } else {
            &self.site
        };
        let line = if self.detail.is_empty() {
            site.to_string()
        } else {
            self.detail.clone()
        };
        let width = line.chars().count().max(1);
        format!(
            "error[{}]: {}\n  --> stage {}, site {}\n   | {}\n   | {}",
            self.kind.name(),
            self.message,
            self.stage,
            site,
            line,
            "^".repeat(width)
        )
    }
}

impl fmt::Display for MqoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let site = if self.site.is_empty() {
            "-"
        } else {
            &self.site
        };
        write!(
            f,
            "[{}/{}] {} (at {})",
            self.stage,
            self.kind.name(),
            self.message,
            site
        )
    }
}

impl std::error::Error for MqoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_verifier_caret_shape() {
        let e = MqoError::fault(ErrorStage::Execute, "temp-build", 3);
        let r = e.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("error[fault-injected]: "));
        assert_eq!(lines[1], "  --> stage execute, site temp-build");
        assert!(lines[2].starts_with("   | "));
        assert!(lines[3].trim_start().starts_with('|'));
        let carets = lines[3].trim_start_matches([' ', '|']).trim();
        assert!(carets.chars().all(|c| c == '^'));
        assert_eq!(
            carets.chars().count(),
            lines[2]
                .trim_start_matches([' ', '|'])
                .trim()
                .chars()
                .count()
        );
    }

    #[test]
    fn budget_classification() {
        assert!(MqoError::time_budget(ErrorStage::Execute, "q0").is_budget());
        assert!(MqoError::mem_budget("q0", 10, 5).is_budget());
        assert!(!MqoError::plan_broken("n3", "no choice").is_budget());
        assert!(!MqoError::fault(ErrorStage::Search, "pool-send", 1).is_budget());
    }

    #[test]
    fn empty_site_renders_dash() {
        let e = MqoError::new(
            MqoErrorKind::UnknownStrategy,
            ErrorStage::Search,
            "",
            "",
            "unknown strategy",
        );
        assert!(e.render().contains("site -"));
        assert!(e.to_string().contains("(at -)"));
    }
}
