//! Shared utilities for the MQO workspace.
//!
//! Keeps the rest of the workspace dependency-free: a fast FxHash-style
//! hasher (integer keys dominate our maps), a macro for `u32` id newtypes,
//! a union-find used by DAG unification, a compact bitset used for
//! relation sets, a scoped worker pool used by the parallel benefit
//! probing in `mqo-core`, and the unified recoverable error type
//! ([`MqoError`]) the whole pipeline threads through its fallible paths.

pub mod bitset;
pub mod error;
pub mod fxhash;
pub mod pool;
pub mod sorted;
pub mod union_find;

pub use bitset::BitSet;
pub use error::{ErrorStage, MqoError, MqoErrorKind};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use pool::{available_parallelism, resolve_threads, ScopedWorkerPool};
pub use sorted::{into_sorted_entries, sorted_entries, sorted_items, sorted_keys};
pub use union_find::UnionFind;

/// Declares a `u32`-backed id newtype with `index()`/`from(usize)` helpers.
///
/// Ids are ordered and hashable so they can key maps and sort stably.
#[macro_export]
macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Index into a dense arena.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense arena index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                Self(i as u32)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}
