//! AND-OR DAG checks: acyclicity, referential integrity, the pseudo-root,
//! subsumption-edge compatibility, the fingerprint collision audit, and
//! the §4.1 sharable-count cross-check.
//!
//! The checkers never trust `topo_order` for reachability — a corrupted
//! DAG's cached order may be stale — and instead walk the op edges from
//! the root themselves.

use crate::{Site, VerifyError, VerifyErrorKind, VerifyStage};
use mqo_dag::{Dag, GroupId, OpKind};
use mqo_util::{FxHashMap, FxHashSet};

fn err(kind: VerifyErrorKind, site: Site, detail: String, message: String) -> VerifyError {
    VerifyError::new(kind, VerifyStage::Dag, site, detail, message)
}

/// One-line description of an op for diagnostics.
fn op_detail(dag: &Dag, o: mqo_dag::OpId) -> String {
    let op = dag.op(o);
    let ins: Vec<String> = dag.op_inputs(o).iter().map(|g| format!("g{g}")).collect();
    format!(
        "op{o}: {}({}) in g{}{}",
        op.kind.name(),
        ins.join(", "),
        dag.op_group(o),
        if op.from_subsumption {
            " [subsumption]"
        } else {
            ""
        }
    )
}

/// Structural checks: acyclicity, link integrity, root well-formedness,
/// subsumption compatibility. Returns every violation found.
#[must_use]
pub fn check_dag(dag: &Dag) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    if dag.topo_order().is_empty() {
        errors.push(err(
            VerifyErrorKind::RootBroken,
            Site::None,
            String::new(),
            "DAG has no root / topological order (renumber never ran)".to_string(),
        ));
        return errors;
    }
    let root = dag.find(dag.root());

    // Reachability + cycle detection: iterative 3-color DFS over the
    // *current* op edges (not the cached topo order).
    let mut color: FxHashMap<GroupId, u8> = FxHashMap::default(); // 1 = visiting, 2 = done
    let mut reachable: Vec<GroupId> = Vec::new();
    let mut cycle = false;
    let children_of = |g: GroupId| -> Vec<GroupId> {
        let mut cs: Vec<GroupId> = dag
            .group_ops(g)
            .flat_map(|o| dag.op_inputs(o))
            .map(|c| dag.find(c))
            .collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    };
    let mut stack: Vec<(GroupId, Vec<GroupId>, usize)> = Vec::new();
    color.insert(root, 1);
    stack.push((root, children_of(root), 0));
    while let Some((g, children, mut cursor)) = stack.pop() {
        let mut descended = false;
        while cursor < children.len() {
            let c = children[cursor];
            cursor += 1;
            match color.get(&c) {
                Some(1) => {
                    if !cycle {
                        errors.push(err(
                            VerifyErrorKind::DagCycle,
                            Site::Group(c),
                            format!("g{c} reached again while still on the DFS stack"),
                            format!("cycle in the AND-OR DAG through group g{c}"),
                        ));
                    }
                    cycle = true;
                }
                Some(_) => {}
                None => {
                    color.insert(c, 1);
                    stack.push((g, children, cursor));
                    stack.push((c, children_of(c), 0));
                    descended = true;
                    break;
                }
            }
        }
        if !descended {
            color.insert(g, 2);
            reachable.push(g);
        }
    }

    // Link integrity over the reachable groups.
    for &g in &reachable {
        let mut alive = 0usize;
        for o in dag.group_ops(g) {
            alive += 1;
            let owner = dag.find(dag.op_group(o));
            if owner != g {
                errors.push(err(
                    VerifyErrorKind::DagLinkBroken,
                    Site::Op(o),
                    op_detail(dag, o),
                    format!("group g{g} lists op{o}, but the op claims owner g{owner}"),
                ));
            }
            for i in dag.op_inputs(o) {
                let i = dag.find(i);
                if !dag.parents_of(i).contains(&o) {
                    errors.push(err(
                        VerifyErrorKind::DagLinkBroken,
                        Site::Op(o),
                        op_detail(dag, o),
                        format!("op{o} reads g{i}, but g{i}'s parent list does not include it"),
                    ));
                }
                // Topological numbering must put children strictly before
                // parents (the incremental cost update relies on it).
                if !cycle && dag.group(i).topo >= dag.group(g).topo && i != g {
                    errors.push(err(
                        VerifyErrorKind::DagLinkBroken,
                        Site::Op(o),
                        op_detail(dag, o),
                        format!(
                            "input g{i} (topo {}) is not numbered before its consumer g{g} (topo {})",
                            dag.group(i).topo,
                            dag.group(g).topo
                        ),
                    ));
                }
            }
        }
        if alive == 0 {
            errors.push(err(
                VerifyErrorKind::DagLinkBroken,
                Site::Group(g),
                format!("g{g}: rows={:.0}, no alive ops", dag.group(g).rows),
                format!("reachable group g{g} has no alive operation"),
            ));
        }
    }

    // Pseudo-root well-formedness.
    let root_ops: Vec<_> = dag
        .group_ops(root)
        .filter(|&o| matches!(dag.op(o).kind, OpKind::Root))
        .collect();
    match root_ops.as_slice() {
        [o] => {
            let arity = dag.op_inputs(*o).len();
            let weights = dag.root_weights();
            if weights.len() != arity {
                errors.push(err(
                    VerifyErrorKind::RootBroken,
                    Site::Op(*o),
                    op_detail(dag, *o),
                    format!(
                        "root op has {arity} query inputs but {} invocation weights",
                        weights.len()
                    ),
                ));
            }
            for (i, &w) in weights.iter().enumerate() {
                if !w.is_finite() || w <= 0.0 {
                    errors.push(err(
                        VerifyErrorKind::RootBroken,
                        Site::Op(*o),
                        op_detail(dag, *o),
                        format!("invocation weight #{i} is {w}; weights must be finite and > 0"),
                    ));
                }
            }
        }
        [] => errors.push(err(
            VerifyErrorKind::RootBroken,
            Site::Group(root),
            format!("root group g{root}"),
            "root group has no alive Root operation".to_string(),
        )),
        many => errors.push(err(
            VerifyErrorKind::RootBroken,
            Site::Group(root),
            format!("root group g{root} with {} Root ops", many.len()),
            "root group has more than one alive Root operation".to_string(),
        )),
    }
    for &g in &reachable {
        if g == root {
            continue;
        }
        for o in dag.group_ops(g) {
            if matches!(dag.op(o).kind, OpKind::Root) {
                errors.push(err(
                    VerifyErrorKind::RootBroken,
                    Site::Op(o),
                    op_detail(dag, o),
                    format!("Root operation outside the root group (g{g})"),
                ));
            }
        }
    }

    // Subsumption edges: §2.1 derivations are unary Select/Aggregate ops
    // whose input covers the same relations as the owner.
    for &g in &reachable {
        for o in dag.group_ops(g) {
            let op = dag.op(o);
            if !op.from_subsumption {
                continue;
            }
            let inputs = dag.op_inputs(o);
            if !matches!(op.kind, OpKind::Select(_) | OpKind::Aggregate { .. }) || inputs.len() != 1
            {
                errors.push(err(
                    VerifyErrorKind::SubsumptionMismatch,
                    Site::Op(o),
                    op_detail(dag, o),
                    "subsumption derivations are unary Select/Aggregate operations".to_string(),
                ));
                continue;
            }
            let src = dag.find(inputs[0]);
            if dag.group(src).relset != dag.group(g).relset {
                errors.push(err(
                    VerifyErrorKind::SubsumptionMismatch,
                    Site::Op(o),
                    op_detail(dag, o),
                    format!(
                        "subsumption source g{src} covers different relations than its owner g{g}"
                    ),
                ));
            }
        }
    }

    errors
}

/// Fingerprint collision audit (`Full` level): no two distinct live
/// canonical groups may share a fingerprint — the cross-batch memo key
/// (`MvStore`, future expansion memoization) would conflate them.
///
/// Assumes [`check_dag`] ran clean (callers gate on it); a structurally
/// broken DAG is reported through the typed fingerprint error instead of
/// a panic.
#[must_use]
pub fn check_fingerprints(dag: &Dag) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    let fps = match mqo_dag::try_group_fingerprints(dag) {
        Ok(fps) => fps,
        Err(e) => {
            errors.push(err(
                VerifyErrorKind::DagLinkBroken,
                Site::None,
                String::new(),
                format!("fingerprinting failed: {e}"),
            ));
            return errors;
        }
    };
    let mut by_fp: FxHashMap<u64, Vec<GroupId>> = FxHashMap::default();
    let mut seen: FxHashSet<GroupId> = FxHashSet::default();
    for (&g, &fp) in &fps {
        let g = dag.find(g);
        if seen.insert(g) {
            by_fp.entry(fp).or_default().push(g);
        }
    }
    for (fp, mut groups) in by_fp {
        if groups.len() < 2 {
            continue;
        }
        groups.sort_unstable();
        let list: Vec<String> = groups.iter().map(|g| format!("g{g}")).collect();
        errors.push(err(
            VerifyErrorKind::FingerprintCollision,
            Site::Group(groups[0]),
            format!("fingerprint {fp:#018x} shared by {}", list.join(", ")),
            format!(
                "{} distinct live groups share a canonical fingerprint",
                groups.len()
            ),
        ));
    }
    errors
}

/// Cross-checks a strategy's reported `sharable` statistic against the
/// §4.1 definition (degree of sharing > 1, not the root, not
/// parameterized). A reported value of 0 means the strategy did not
/// compute the statistic (Volcano leaves it unset) and is not checked.
#[must_use]
pub fn check_sharable(dag: &Dag, reported: usize) -> Vec<VerifyError> {
    if reported == 0 {
        return Vec::new();
    }
    let actual = mqo_dag::sharable_groups(dag).len();
    if actual == reported {
        return Vec::new();
    }
    vec![err(
        VerifyErrorKind::SharableMismatch,
        Site::None,
        format!("reported {reported}, recomputed {actual}"),
        format!(
            "reported sharable-group count {reported} disagrees with the §4.1 recount {actual}"
        ),
    )]
}
