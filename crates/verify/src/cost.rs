//! Cost checks: finiteness, table self-consistency, and honesty of
//! reported totals.
//!
//! Strategies report a total cost alongside their materialization
//! choices; the checks here recompute costs bottom-up from scratch and
//! require the report to be *honest*:
//!
//! - no cost is NaN or negative, and the root's cost is finite;
//! - a table's `best_op`/`op_cost`/`node_cost` books agree;
//! - the reported total is never **below** a fresh
//!   `total_excluding(pdag, mat, warm)` recomputation (a strategy may
//!   report a plan-graph-restricted cost that is higher than the
//!   DAG-wide optimum — Volcano-SH does — but never lower: understating
//!   cost is how a broken incremental propagation hides);
//! - (`Full`) the reported total never exceeds the Volcano no-sharing
//!   baseline — sharing must not lose to independent optimization.

use crate::{Site, VerifyError, VerifyErrorKind, VerifyStage};
use mqo_cost::Cost;
use mqo_physical::{CostTable, MatSet, PhysNodeId, PhysicalDag};

fn err(kind: VerifyErrorKind, site: Site, detail: String, message: String) -> VerifyError {
    VerifyError::new(kind, VerifyStage::Cost, site, detail, message)
}

/// Relative-plus-absolute tolerance for cost comparisons: costs are sums
/// of thousands of f64 terms accumulated in different orders.
pub(crate) const EPS: f64 = 1e-6;

/// `a > b` beyond floating-point noise.
pub(crate) fn above(a: Cost, b: Cost) -> bool {
    a.secs() > b.secs() + b.secs().abs() * EPS + EPS
}

/// Checks a cost table's internal consistency against its own DAG:
/// every entry finite-or-infinity (never NaN, never negative), sizes
/// aligned, `node_cost` the min over the node's `op_cost`s, and
/// `best_op` pointing at an op of the node achieving that min.
pub fn check_cost_table(pdag: &PhysicalDag, table: &CostTable, mat: &MatSet) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    if table.node_cost.len() != pdag.num_nodes()
        || table.op_cost.len() != pdag.num_ops()
        || table.best_op.len() != pdag.num_nodes()
    {
        errors.push(err(
            VerifyErrorKind::CostInvalid,
            Site::None,
            format!(
                "table sized {}/{} nodes, {}/{} ops",
                table.node_cost.len(),
                pdag.num_nodes(),
                table.op_cost.len(),
                pdag.num_ops()
            ),
            "cost table size does not match the physical DAG".to_string(),
        ));
        return errors;
    }
    for (i, &c) in table.op_cost.iter().enumerate() {
        if c.secs().is_nan() || c.secs() < 0.0 {
            errors.push(err(
                VerifyErrorKind::CostInvalid,
                Site::PhysOp(mqo_physical::PhysOpId::from_index(i)),
                format!("op_cost[{i}] = {:?}", c),
                "op cost is NaN or negative".to_string(),
            ));
        }
    }
    for (i, &c) in table.node_cost.iter().enumerate() {
        let n = PhysNodeId::from_index(i);
        if c.secs().is_nan() || c.secs() < 0.0 {
            errors.push(err(
                VerifyErrorKind::CostInvalid,
                Site::Node(n),
                format!("node_cost[{i}] = {:?}", c),
                "node cost is NaN or negative".to_string(),
            ));
            continue;
        }
        let ops = &pdag.node(n).ops;
        let min = ops
            .iter()
            .map(|o| table.op_cost[o.index()])
            .fold(Cost::INFINITY, Cost::min);
        if !close(c, min) {
            errors.push(err(
                VerifyErrorKind::CostInvalid,
                Site::Node(n),
                format!("node_cost[{i}] = {:?}, min op_cost = {min:?}", c),
                "node cost is not the minimum over its ops' costs".to_string(),
            ));
        }
        match table.best_op[i] {
            Some(o) => {
                if !ops.contains(&o) {
                    errors.push(err(
                        VerifyErrorKind::CostInvalid,
                        Site::Node(n),
                        format!("best_op[{i}] = p{o}"),
                        "best_op points at an op of a different node".to_string(),
                    ));
                } else if !close(table.op_cost[o.index()], c) {
                    errors.push(err(
                        VerifyErrorKind::CostInvalid,
                        Site::Node(n),
                        format!(
                            "best_op[{i}] = p{o} costs {:?}, node_cost = {:?}",
                            table.op_cost[o.index()],
                            c
                        ),
                        "best_op does not achieve the node's cost".to_string(),
                    ));
                }
            }
            None => {
                if c.is_finite() && !pdag.node(n).ops.is_empty() {
                    errors.push(err(
                        VerifyErrorKind::CostInvalid,
                        Site::Node(n),
                        format!("node_cost[{i}] = {:?} with best_op = None", c),
                        "finite node cost without a best op".to_string(),
                    ));
                }
            }
        }
    }
    // Materialized nodes must be buildable under this very table.
    for m in mat.iter() {
        let c = table.node_cost[m.index()];
        if !c.is_finite() {
            errors.push(err(
                VerifyErrorKind::CostInvalid,
                Site::Node(m),
                format!("materialized n{m} has node_cost {:?}", c),
                "materialized node is not computable (infinite cost)".to_string(),
            ));
        }
    }
    errors
}

/// `|a - b|` within tolerance; infinities compare equal to themselves.
fn close(a: Cost, b: Cost) -> bool {
    if a.secs().is_infinite() || b.secs().is_infinite() {
        return a.secs() == b.secs();
    }
    (a.secs() - b.secs()).abs() <= a.secs().abs().max(b.secs().abs()) * EPS + EPS
}

/// Checks that `reported` does not understate a fresh recomputation of
/// `total_excluding(pdag, mat, warm)` (seeded warm nodes excluded from
/// the total exactly once). `fresh` must be `CostTable::compute(pdag,
/// mat)`.
#[must_use]
pub fn check_reported_total(
    pdag: &PhysicalDag,
    fresh: &CostTable,
    mat: &MatSet,
    warm: &MatSet,
    reported: Cost,
) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    if reported.secs().is_nan() || reported.secs() < 0.0 || !reported.is_finite() {
        errors.push(err(
            VerifyErrorKind::CostInvalid,
            Site::None,
            format!("reported total = {reported:?}"),
            "reported total must be finite and nonnegative".to_string(),
        ));
        return errors;
    }
    let recomputed = fresh.total_excluding(pdag, mat, warm);
    if above(recomputed, reported) {
        errors.push(err(
            VerifyErrorKind::TotalMismatch,
            Site::None,
            format!("reported {reported:?}, fresh recompute {recomputed:?}"),
            "reported total understates a fresh bottom-up recomputation under the same \
             materialized set"
                .to_string(),
        ));
    }
    errors
}

/// (`Full`) Checks that a sharing strategy's reported total does not
/// exceed the Volcano no-sharing baseline: an empty materialized set,
/// ignoring the warm cache.
#[must_use]
pub fn check_against_baseline(pdag: &PhysicalDag, reported: Cost) -> Vec<VerifyError> {
    let empty = MatSet::new();
    let baseline = CostTable::compute(pdag, &empty).total(pdag, &empty);
    if above(reported, baseline) {
        return vec![err(
            VerifyErrorKind::CostAboveBaseline,
            Site::None,
            format!("reported {reported:?}, Volcano baseline {baseline:?}"),
            "sharing strategy reported a cost above the no-sharing baseline".to_string(),
        )];
    }
    Vec::new()
}
