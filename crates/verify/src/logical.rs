//! Logical-plan checks: schema and type soundness before expansion.
//!
//! Extends `mqo_logical::validate` (which guards column scoping on the
//! construction path) with type agreement: predicate operands must be
//! comparable, aggregates must be over numeric arguments, and arithmetic
//! must not touch strings. The checks recompute available-column sets
//! bottom-up exactly like the validator, but report every violation
//! instead of stopping at the first.

use crate::{Site, VerifyError, VerifyErrorKind, VerifyStage};
use mqo_catalog::{Catalog, ColId, ColType};
use mqo_expr::{Atom, Predicate, ScalarExpr, Value};
use mqo_logical::LogicalPlan;
use mqo_util::FxHashSet;

fn err(kind: VerifyErrorKind, detail: String, message: String) -> VerifyError {
    VerifyError::new(kind, VerifyStage::Logical, Site::None, detail, message)
}

/// Checks one logical plan tree against the catalog. Returns every
/// violation found (empty = clean).
#[must_use]
pub fn check_plan(plan: &LogicalPlan, catalog: &Catalog) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    avail_cols(plan, catalog, &mut errors);
    errors
}

/// Recomputes the column set a subtree produces, reporting violations
/// along the way. Mirrors `LogicalPlan::output_cols` but checks as it
/// goes.
fn avail_cols(
    plan: &LogicalPlan,
    catalog: &Catalog,
    errors: &mut Vec<VerifyError>,
) -> FxHashSet<ColId> {
    match plan {
        LogicalPlan::Scan(t) => catalog.table_ref(*t).columns.iter().copied().collect(),
        LogicalPlan::Select { pred, input } => {
            let avail = avail_cols(input, catalog, errors);
            check_pred(pred, &avail, catalog, "Select", errors);
            avail
        }
        LogicalPlan::Join { pred, left, right } => {
            let l = avail_cols(left, catalog, errors);
            let r = avail_cols(right, catalog, errors);
            let mut avail: FxHashSet<ColId> = l.union(&r).copied().collect();
            if let Some(&c) = l.intersection(&r).next() {
                errors.push(err(
                    VerifyErrorKind::UnboundColumn,
                    format!("Join inputs both produce {}", col_name(catalog, c)),
                    "join inputs must produce disjoint column sets".to_string(),
                ));
            }
            check_pred(pred, &avail, catalog, "Join", errors);
            avail.extend(l);
            avail
        }
        LogicalPlan::Aggregate { keys, aggs, input } => {
            let avail = avail_cols(input, catalog, errors);
            for &k in keys {
                if !avail.contains(&k) {
                    errors.push(err(
                        VerifyErrorKind::UnboundColumn,
                        format!("Aggregate key {}", col_name(catalog, k)),
                        "group-by key is not produced by the aggregate's input".to_string(),
                    ));
                }
            }
            let mut out: FxHashSet<ColId> = keys.iter().copied().collect();
            for a in aggs {
                check_scalar(&a.arg, &avail, catalog, "Aggregate argument", errors);
                if a.func == mqo_expr::AggFunc::Sum {
                    if let Some(ty) = scalar_type(&a.arg, catalog) {
                        if matches!(ty, ColType::Str(_)) {
                            errors.push(err(
                                VerifyErrorKind::TypeMismatch,
                                format!("SUM over {}", scalar_desc(&a.arg, catalog)),
                                "SUM requires a numeric argument".to_string(),
                            ));
                        }
                    }
                }
                out.insert(a.output);
            }
            out
        }
        LogicalPlan::Project { cols, input } => {
            let avail = avail_cols(input, catalog, errors);
            for &c in cols {
                if !avail.contains(&c) {
                    errors.push(err(
                        VerifyErrorKind::ProjectionNotSubset,
                        format!("Project {}", col_name(catalog, c)),
                        "projection names a column its input does not produce".to_string(),
                    ));
                }
            }
            cols.iter().copied().collect()
        }
    }
}

/// Checks a predicate's column scoping and operand type agreement.
fn check_pred(
    pred: &Predicate,
    avail: &FxHashSet<ColId>,
    catalog: &Catalog,
    at: &str,
    errors: &mut Vec<VerifyError>,
) {
    for disjunct in pred.disjuncts() {
        for atom in disjunct.atoms() {
            match atom {
                Atom::Cmp { col, val, .. } => {
                    check_col(*col, avail, catalog, at, errors);
                    let string_col = matches!(col_type(catalog, *col), Some(ColType::Str(_)));
                    let string_val = matches!(val, Value::Str(_));
                    let numeric_val = matches!(val, Value::Int(_) | Value::Float(_));
                    if (string_col && numeric_val) || (!string_col && string_val) {
                        errors.push(err(
                            VerifyErrorKind::TypeMismatch,
                            format!("{at}: {} vs {val:?}", col_desc(catalog, *col)),
                            "comparison between a string and a number".to_string(),
                        ));
                    }
                }
                Atom::ColCmp { left, right, .. } => {
                    check_col(*left, avail, catalog, at, errors);
                    check_col(*right, avail, catalog, at, errors);
                    let ls = matches!(col_type(catalog, *left), Some(ColType::Str(_)));
                    let rs = matches!(col_type(catalog, *right), Some(ColType::Str(_)));
                    if ls != rs {
                        errors.push(err(
                            VerifyErrorKind::TypeMismatch,
                            format!(
                                "{at}: {} vs {}",
                                col_desc(catalog, *left),
                                col_desc(catalog, *right)
                            ),
                            "comparison between a string and a numeric column".to_string(),
                        ));
                    }
                }
                Atom::Param { col, .. } => check_col(*col, avail, catalog, at, errors),
            }
        }
    }
}

/// Checks a scalar expression's column scoping and flags arithmetic over
/// strings.
fn check_scalar(
    expr: &ScalarExpr,
    avail: &FxHashSet<ColId>,
    catalog: &Catalog,
    at: &str,
    errors: &mut Vec<VerifyError>,
) {
    match expr {
        ScalarExpr::Col(c) => check_col(*c, avail, catalog, at, errors),
        ScalarExpr::Const(_) => {}
        ScalarExpr::BinOp { left, right, .. } => {
            check_scalar(left, avail, catalog, at, errors);
            check_scalar(right, avail, catalog, at, errors);
            for side in [left, right] {
                if matches!(scalar_type(side, catalog), Some(ColType::Str(_))) {
                    errors.push(err(
                        VerifyErrorKind::TypeMismatch,
                        format!("{at}: arithmetic over {}", scalar_desc(side, catalog)),
                        "arithmetic requires numeric operands".to_string(),
                    ));
                }
            }
        }
    }
}

fn check_col(
    c: ColId,
    avail: &FxHashSet<ColId>,
    catalog: &Catalog,
    at: &str,
    errors: &mut Vec<VerifyError>,
) {
    if !avail.contains(&c) {
        errors.push(err(
            VerifyErrorKind::UnboundColumn,
            format!("{at}: {}", col_name(catalog, c)),
            "column is not produced by the operator's input".to_string(),
        ));
    }
}

/// The catalog type of a column, or `None` if the id is out of range
/// (reported separately as an unbound column by scoping checks).
fn col_type(catalog: &Catalog, c: ColId) -> Option<ColType> {
    catalog.columns().get(c.index()).map(|col| col.ty)
}

fn col_name(catalog: &Catalog, c: ColId) -> String {
    match catalog.columns().get(c.index()) {
        Some(col) => format!("column `{}` (c{c})", col.name),
        None => format!("column c{c} (not in catalog)"),
    }
}

fn col_desc(catalog: &Catalog, c: ColId) -> String {
    match catalog.columns().get(c.index()) {
        Some(col) => format!("`{}`: {:?}", col.name, col.ty),
        None => format!("c{c}: ?"),
    }
}

/// Static type of a scalar expression where determinable.
fn scalar_type(expr: &ScalarExpr, catalog: &Catalog) -> Option<ColType> {
    match expr {
        ScalarExpr::Col(c) => col_type(catalog, *c),
        ScalarExpr::Const(Value::Int(_)) => Some(ColType::Int),
        ScalarExpr::Const(Value::Float(_)) => Some(ColType::Float),
        ScalarExpr::Const(Value::Str(s)) => Some(ColType::Str(s.len() as u16)),
        ScalarExpr::Const(Value::Null) => None,
        ScalarExpr::BinOp { .. } => Some(ColType::Float),
    }
}

fn scalar_desc(expr: &ScalarExpr, catalog: &Catalog) -> String {
    match expr {
        ScalarExpr::Col(c) => col_desc(catalog, *c),
        other => format!("{other:?}"),
    }
}
