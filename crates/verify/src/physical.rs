//! Physical-DAG checks: link integrity, delivered-order justification,
//! and temp-dependency registration.
//!
//! The order check recomputes, per physical op, the sort order its
//! algorithm actually delivers (mirroring the executor's `sorted_on`
//! bookkeeping in `mqo_exec::engine`) and requires it to satisfy the
//! owning node's promised property — every `sorted[..]` node must be
//! justified by an enforcer or an order-preserving operator.

use crate::{Site, VerifyError, VerifyErrorKind, VerifyStage};
use mqo_catalog::Catalog;
use mqo_dag::Dag;
use mqo_physical::{Algo, PhysOpId, PhysProp, PhysicalDag};

fn err(kind: VerifyErrorKind, site: Site, detail: String, message: String) -> VerifyError {
    VerifyError::new(kind, VerifyStage::Physical, site, detail, message)
}

fn op_detail(pdag: &PhysicalDag, o: PhysOpId) -> String {
    let op = pdag.op(o);
    let ins: Vec<String> = op.inputs.iter().map(|n| format!("n{n}")).collect();
    format!(
        "p{o}: {} at n{} (g{}:{}) inputs [{}]",
        algo_name(&op.algo),
        op.node,
        pdag.node(op.node).group,
        pdag.node(op.node).prop,
        ins.join(", ")
    )
}

fn algo_name(a: &Algo) -> &'static str {
    match a {
        Algo::TableScan { .. } => "TableScan",
        Algo::IndexedSelect { .. } => "IndexedSelect",
        Algo::TempIndexedSelect { .. } => "TempIndexedSelect",
        Algo::Filter { .. } => "Filter",
        Algo::NestLoopsJoin { .. } => "NestLoopsJoin",
        Algo::MergeJoin { .. } => "MergeJoin",
        Algo::IndexedNLJoinBase { .. } => "IndexedNLJoinBase",
        Algo::IndexedNLJoinTemp { .. } => "IndexedNLJoinTemp",
        Algo::Sort { .. } => "Sort",
        Algo::SortAggregate { .. } => "SortAggregate",
        Algo::Project { .. } => "Project",
        Algo::Root => "Root",
    }
}

/// Checks the physicalized DAG. Returns every violation found.
#[must_use]
pub fn check_pdag(dag: &Dag, pdag: &PhysicalDag, catalog: &Catalog) -> Vec<VerifyError> {
    let mut errors = Vec::new();

    // Root node: must exist, belong to the DAG root group, and carry no
    // order requirement.
    let root = pdag.root();
    if root.index() >= pdag.num_nodes() {
        errors.push(err(
            VerifyErrorKind::PhysLinkBroken,
            Site::Node(root),
            format!("root n{root}"),
            "physical root id is out of range".to_string(),
        ));
        return errors;
    }
    let rn = pdag.node(root);
    if dag.find(rn.group) != dag.find(dag.root()) || rn.prop != PhysProp::Any {
        errors.push(err(
            VerifyErrorKind::PhysLinkBroken,
            Site::Node(root),
            format!("root n{root} is (g{}:{})", rn.group, rn.prop),
            "physical root must be the DAG root group with property `any`".to_string(),
        ));
    }

    // Node-side links.
    for (i, node) in pdag.nodes().iter().enumerate() {
        let n = mqo_physical::PhysNodeId::from_index(i);
        if node.ops.is_empty() {
            errors.push(err(
                VerifyErrorKind::PhysLinkBroken,
                Site::Node(n),
                format!("n{n}: g{}:{} with no ops", node.group, node.prop),
                format!("physical node n{n} has no implementing operation"),
            ));
        }
        for &o in &node.ops {
            if o.index() >= pdag.num_ops() || pdag.op(o).node != n {
                errors.push(err(
                    VerifyErrorKind::PhysLinkBroken,
                    Site::Node(n),
                    format!("n{n} lists p{o}"),
                    format!("node n{n} lists op p{o}, which does not claim it as owner"),
                ));
            }
        }
    }

    // Op-side links, order justification, temp-dep registration.
    for (i, op) in pdag.ops().iter().enumerate() {
        let o = PhysOpId::from_index(i);
        let owner = op.node;
        if owner.index() >= pdag.num_nodes() {
            errors.push(err(
                VerifyErrorKind::PhysLinkBroken,
                Site::PhysOp(o),
                format!("p{o} at out-of-range node n{owner}"),
                "op's owning node id is out of range".to_string(),
            ));
            continue;
        }
        if !pdag.node(owner).ops.contains(&o) {
            errors.push(err(
                VerifyErrorKind::PhysLinkBroken,
                Site::PhysOp(o),
                op_detail(pdag, o),
                format!("op p{o} claims node n{owner}, which does not list it"),
            ));
        }
        for &input in &op.inputs {
            if input.index() >= pdag.num_nodes() {
                errors.push(err(
                    VerifyErrorKind::PhysLinkBroken,
                    Site::PhysOp(o),
                    op_detail(pdag, o),
                    format!("input n{input} is out of range"),
                ));
                continue;
            }
            if !pdag.node(input).parents.contains(&o) {
                errors.push(err(
                    VerifyErrorKind::PhysLinkBroken,
                    Site::PhysOp(o),
                    op_detail(pdag, o),
                    format!("p{o} reads n{input}, but n{input}'s parent list does not include it"),
                ));
            }
            if pdag.node(input).topo >= pdag.node(owner).topo {
                errors.push(err(
                    VerifyErrorKind::PhysLinkBroken,
                    Site::PhysOp(o),
                    op_detail(pdag, o),
                    format!(
                        "input n{input} (topo {}) is not numbered before its consumer n{owner} (topo {})",
                        pdag.node(input).topo,
                        pdag.node(owner).topo
                    ),
                ));
            }
        }
        // Root weights appear exactly on Root ops, aligned with inputs.
        match (&op.algo, &op.weights) {
            (Algo::Root, Some(ws)) if ws.len() == op.inputs.len() => {}
            (Algo::Root, Some(ws)) => errors.push(err(
                VerifyErrorKind::PhysLinkBroken,
                Site::PhysOp(o),
                op_detail(pdag, o),
                format!(
                    "Root op has {} inputs but {} weights",
                    op.inputs.len(),
                    ws.len()
                ),
            )),
            (Algo::Root, None) => errors.push(err(
                VerifyErrorKind::PhysLinkBroken,
                Site::PhysOp(o),
                op_detail(pdag, o),
                "Root op is missing its invocation weights".to_string(),
            )),
            (_, Some(_)) => errors.push(err(
                VerifyErrorKind::PhysLinkBroken,
                Site::PhysOp(o),
                op_detail(pdag, o),
                "non-Root op carries invocation weights".to_string(),
            )),
            (_, None) => {}
        }
        if !op.local.is_finite() || op.local.secs() < 0.0 {
            errors.push(err(
                VerifyErrorKind::CostInvalid,
                Site::PhysOp(o),
                op_detail(pdag, o),
                format!("local cost {:?} is not finite and nonnegative", op.local),
            ));
        }
        check_temp_dep(pdag, o, &mut errors);
        check_order(pdag, catalog, o, &mut errors);
    }

    errors
}

/// Temp-dependency invariants: the algos that probe a materialized temp
/// carry a `temp_dep` registered with the source group's watcher list;
/// no other algo carries one.
fn check_temp_dep(pdag: &PhysicalDag, o: PhysOpId, errors: &mut Vec<VerifyError>) {
    let op = pdag.op(o);
    let takes_temp = matches!(
        op.algo,
        Algo::TempIndexedSelect { .. } | Algo::IndexedNLJoinTemp { .. }
    );
    match (&op.temp_dep, takes_temp) {
        (Some(td), true) => {
            if !pdag.temp_watchers(td.source).contains(&o) {
                errors.push(err(
                    VerifyErrorKind::TempDepBroken,
                    Site::PhysOp(o),
                    op_detail(pdag, o),
                    format!(
                        "temp-dependent op is not registered in g{}'s watcher list",
                        td.source
                    ),
                ));
            }
            let declared = match &op.algo {
                Algo::TempIndexedSelect { source, col, .. } => Some((*source, *col)),
                Algo::IndexedNLJoinTemp {
                    source, inner_key, ..
                } => Some((*source, *inner_key)),
                _ => None,
            };
            if let Some((src, key)) = declared {
                if src != td.source || key != td.key {
                    errors.push(err(
                        VerifyErrorKind::TempDepBroken,
                        Site::PhysOp(o),
                        op_detail(pdag, o),
                        format!(
                            "temp_dep (g{}, c{}) disagrees with the algo's (g{src}, c{key})",
                            td.source, td.key
                        ),
                    ));
                }
            }
        }
        (None, true) => errors.push(err(
            VerifyErrorKind::TempDepBroken,
            Site::PhysOp(o),
            op_detail(pdag, o),
            "temp-probing algorithm has no temp_dep".to_string(),
        )),
        (Some(_), false) => errors.push(err(
            VerifyErrorKind::TempDepBroken,
            Site::PhysOp(o),
            op_detail(pdag, o),
            "non-temp algorithm carries a temp_dep".to_string(),
        )),
        (None, false) => {}
    }
}

/// The sort order `o` delivers, mirroring the executor's `sorted_on`
/// bookkeeping. `None` means "cannot be determined locally" (never the
/// case today; kept for totality).
fn delivered_order(pdag: &PhysicalDag, catalog: &Catalog, o: PhysOpId) -> Option<PhysProp> {
    let op = pdag.op(o);
    let input_prop = |i: usize| -> PhysProp {
        op.inputs
            .get(i)
            .map_or(PhysProp::Any, |&n| pdag.node(n).prop.clone())
    };
    Some(match &op.algo {
        Algo::TableScan { table } => match catalog.table_ref(*table).clustered_on {
            Some(c) => PhysProp::sorted(vec![c]),
            None => PhysProp::Any,
        },
        Algo::IndexedSelect { table, .. } => match catalog.table_ref(*table).clustered_on {
            Some(c) => PhysProp::sorted(vec![c]),
            None => PhysProp::Any, // unclustered base: nothing justified
        },
        Algo::TempIndexedSelect { col, .. } => PhysProp::sorted(vec![*col]),
        Algo::Filter { .. } => input_prop(0),
        Algo::NestLoopsJoin { .. }
        | Algo::IndexedNLJoinBase { .. }
        | Algo::IndexedNLJoinTemp { .. }
        | Algo::Root => PhysProp::Any,
        Algo::MergeJoin { left_keys, .. } => PhysProp::sorted(left_keys.clone()),
        Algo::Sort { keys } => PhysProp::sorted(keys.clone()),
        Algo::SortAggregate { keys, .. } => PhysProp::sorted(keys.clone()),
        Algo::Project { cols } => match input_prop(0) {
            PhysProp::Sorted(keys) => {
                let kept: Vec<_> = keys.into_iter().take_while(|k| cols.contains(k)).collect();
                PhysProp::sorted(kept)
            }
            PhysProp::Any => PhysProp::Any,
        },
    })
}

/// Requires the delivered order of `o` to satisfy its node's promise.
fn check_order(pdag: &PhysicalDag, catalog: &Catalog, o: PhysOpId, errors: &mut Vec<VerifyError>) {
    let op = pdag.op(o);
    if op.node.index() >= pdag.num_nodes() {
        return; // already reported as a link error
    }
    let want = &pdag.node(op.node).prop;
    let Some(delivered) = delivered_order(pdag, catalog, o) else {
        return;
    };
    if !delivered.satisfies(want) {
        errors.push(err(
            VerifyErrorKind::OrderNotJustified,
            Site::PhysOp(o),
            op_detail(pdag, o),
            format!(
                "node promises {want} but {} delivers {delivered}",
                algo_name(&op.algo)
            ),
        ));
    }
}
