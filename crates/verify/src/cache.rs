//! Cross-batch MV-store checks: byte accounting, per-entry sanity, and
//! cumulative-stats consistency.
//!
//! The store is the only state that survives a batch, so a bookkeeping
//! slip here compounds forever: an undercharged entry slowly inflates
//! the effective budget, an overcounted eviction makes the hit-rate
//! stats lie. Every inequality below is an identity of
//! [`MvStore`]'s admission/eviction/clear paths.

use crate::{Site, VerifyError, VerifyErrorKind, VerifyStage};
use mqo_exec::MvStore;

fn err(detail: String, message: String) -> VerifyError {
    VerifyError::new(
        VerifyErrorKind::CacheAccounting,
        VerifyStage::Cache,
        Site::None,
        detail,
        message,
    )
}

/// Checks the store's accounting identities. Returns every violation
/// found.
#[must_use]
pub fn check_store(store: &MvStore) -> Vec<VerifyError> {
    let mut errors = Vec::new();

    let mut sum_bytes = 0usize;
    let mut sum_hits = 0u64;
    for (fp, e) in store.iter() {
        sum_bytes += e.bytes;
        sum_hits += e.hits;
        if e.bytes != e.table.approx_bytes() {
            errors.push(err(
                format!(
                    "entry {fp:#018x}: charged {} bytes, table holds {}",
                    e.bytes,
                    e.table.approx_bytes()
                ),
                "entry's charged bytes disagree with its table's actual footprint".to_string(),
            ));
        }
        if !e.charged_blocks.is_finite() || e.charged_blocks < 1.0 {
            errors.push(err(
                format!("entry {fp:#018x}: charged_blocks = {}", e.charged_blocks),
                "charged blocks must be finite and at least one whole block".to_string(),
            ));
        }
        if !e.benefit_secs.is_finite() || e.benefit_secs < 0.0 {
            errors.push(err(
                format!("entry {fp:#018x}: benefit_secs = {}", e.benefit_secs),
                "entry benefit must be finite and nonnegative".to_string(),
            ));
        }
        if e.last_used_batch < e.admitted_batch {
            errors.push(err(
                format!(
                    "entry {fp:#018x}: admitted at batch {}, last used at batch {}",
                    e.admitted_batch, e.last_used_batch
                ),
                "entry was last used before it was admitted".to_string(),
            ));
        }
    }

    if sum_bytes != store.bytes_used() {
        errors.push(err(
            format!(
                "bytes_used = {}, sum of entry bytes = {sum_bytes}",
                store.bytes_used()
            ),
            "store's charged byte total disagrees with the sum over its entries".to_string(),
        ));
    }
    if store.bytes_used() > store.budget_bytes() {
        errors.push(err(
            format!(
                "bytes_used = {} over budget_bytes = {}",
                store.bytes_used(),
                store.budget_bytes()
            ),
            "store is charged beyond its byte budget".to_string(),
        ));
    }

    let stats = store.stats();
    if stats.evictions > stats.admissions {
        errors.push(err(
            format!(
                "admissions = {}, evictions = {}",
                stats.admissions, stats.evictions
            ),
            "more entries evicted than were ever admitted".to_string(),
        ));
    } else if (store.len() as u64) > stats.admissions - stats.evictions {
        // `clear()` may drop entries without counting evictions, so the
        // live count can only be *at most* admissions − evictions.
        errors.push(err(
            format!(
                "{} live entries, admissions − evictions = {}",
                store.len(),
                stats.admissions - stats.evictions
            ),
            "more live entries than admissions minus evictions".to_string(),
        ));
    }
    if sum_hits > stats.hits {
        errors.push(err(
            format!(
                "sum of entry hits = {sum_hits}, stats.hits = {}",
                stats.hits
            ),
            "live entries record more hits than the store ever served".to_string(),
        ));
    }

    errors
}
