//! Staged IR verifier — compiler-style invariant checking over every
//! intermediate representation of the MQO pipeline, in the spirit of
//! LLVM's `-verify` passes.
//!
//! Each pipeline stage carries invariants the paper's correctness
//! silently depends on; this crate makes them machine-checked:
//!
//! | stage | module | invariants |
//! |---|---|---|
//! | logical plan | [`logical`] | column refs resolve, operand types agree, projections ⊆ inputs |
//! | AND-OR DAG | [`dag`] | acyclic, referential integrity, fingerprint collision audit, subsumption compatibility, §4.1 sharable count |
//! | physical DAG | [`physical`] | `sorted_on` propagation justified at every node, link integrity, temp-dep registration |
//! | cost tables | [`cost`] | finite/nonnegative, best-op consistency, totals honest vs. a fresh recompute and the Volcano baseline |
//! | extraction | [`extract`] | warm ∩ cold = ∅, temps built-before-read and exactly once, every read resolvable |
//! | MV cache | [`cache`] | byte accounting balances, budget respected, admit/evict counters consistent |
//!
//! Violations are reported as typed [`VerifyError`]s (never panics from
//! inside the checkers themselves — the verifier must survive arbitrarily
//! broken IR, that is its job), collected into a [`VerifyReport`].
//! Callers at stage boundaries use [`VerifyReport::assert_clean`], which
//! panics with rendered caret diagnostics; `mqo-lint` instead collects
//! reports across whole workloads and exits nonzero.
//!
//! Verification intensity is a [`VerifyLevel`] (`MQO_VERIFY` in the
//! environment): `Off`, `Boundaries` (structural checks at each stage
//! boundary — the default under `debug_assertions`), or `Full`
//! (adds the fingerprint collision audit, the §4.1 sharable cross-check,
//! and the no-sharing baseline comparison).

pub mod cache;
pub mod cost;
pub mod dag;
pub mod extract;
pub mod logical;
pub mod physical;

use mqo_dag::{Dag, GroupId, OpId};
use mqo_physical::{PhysNodeId, PhysOpId, PhysicalDag};

/// Pipeline stage a diagnostic belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyStage {
    /// Logical plan trees (pre-expansion).
    Logical,
    /// The unified AND-OR DAG.
    Dag,
    /// The physicalized DAG.
    Physical,
    /// Cost tables and reported search totals.
    Cost,
    /// Extracted plans (materialization schedules).
    Extraction,
    /// The cross-batch materialized-view cache.
    Cache,
}

impl std::fmt::Display for VerifyStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VerifyStage::Logical => "logical",
            VerifyStage::Dag => "dag",
            VerifyStage::Physical => "physical",
            VerifyStage::Cost => "cost",
            VerifyStage::Extraction => "extraction",
            VerifyStage::Cache => "cache",
        };
        f.write_str(s)
    }
}

/// The typed diagnostics catalog. Every variant is proven live by a
/// negative test that constructs deliberately broken IR and asserts the
/// exact kind fires (`crates/verify/tests/negative.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyErrorKind {
    // -- logical ------------------------------------------------------
    /// A column reference does not resolve against the catalog or the
    /// columns its input subtree produces.
    UnboundColumn,
    /// Predicate or aggregate operand types disagree (string compared to
    /// a number, `SUM` over a string, arithmetic on a string).
    TypeMismatch,
    /// A projection names columns its input does not produce.
    ProjectionNotSubset,
    // -- dag ----------------------------------------------------------
    /// The AND-OR DAG has a cycle reachable from the root.
    DagCycle,
    /// Group/op referential integrity is broken: an op not back-linked
    /// from its inputs' parent lists, an op owned by a group that does
    /// not list it, a reachable group with no alive op, or topological
    /// numbers that do not put children before parents.
    DagLinkBroken,
    /// Two distinct live groups share a canonical fingerprint — the
    /// cross-batch memoization key would conflate them.
    FingerprintCollision,
    /// A subsumption-derived op is not a unary Select/Aggregate over a
    /// group with the owner's relation set (§2.1 derivations relate
    /// expressions over the same relations).
    SubsumptionMismatch,
    /// The pseudo-root is malformed: missing, not exactly one alive Root
    /// op, Root ops outside the root group, or invocation weights that
    /// are non-finite, non-positive, or mismatched in arity.
    RootBroken,
    /// A strategy's reported `sharable` statistic disagrees with the
    /// §4.1 definition recomputed from the DAG.
    SharableMismatch,
    // -- physical -----------------------------------------------------
    /// Physical node/op referential integrity is broken (bad ownership
    /// back-links, inputs not topologically before consumers, a node
    /// with no ops, root weights on a non-root op).
    PhysLinkBroken,
    /// A node promises a sort order no enforcer or order-preserving op
    /// attached to it actually delivers.
    OrderNotJustified,
    /// A temp-dependent op is inconsistent: not registered with its
    /// source group's watcher list, carried by an algorithm that takes
    /// no temp, or missing from one that requires it.
    TempDepBroken,
    // -- cost ---------------------------------------------------------
    /// A cost is NaN or negative, a table's `best_op`/`node_cost` books
    /// disagree with each other, or a cost that must be finite is not.
    CostInvalid,
    /// A plan's total is below the sum of the local-cost floors of the
    /// operators it actually runs.
    CostBelowFloor,
    /// A sharing strategy reported a cost above the Volcano no-sharing
    /// baseline — sharing must never lose to independent optimization.
    CostAboveBaseline,
    /// A reported total understates a fresh bottom-up recomputation
    /// under the same materialized set (seeded warm nodes excluded
    /// exactly once), or a plan's stamped total disagrees with its own
    /// materialization schedule.
    TotalMismatch,
    // -- extraction ---------------------------------------------------
    /// A node is scheduled both as a cold materialization and as a warm
    /// cache read, or a warm/cold list escapes its defining set.
    WarmColdOverlap,
    /// The materialization schedule builds a temp twice, or a temp's
    /// definition reads a temp that is not built yet (the executor would
    /// silently recompute, diverging from the costed plan).
    TempOrderViolation,
    /// The extracted plan is structurally unsound: missing choices for
    /// referenced nodes, a reuse pointing outside the materialized/warm
    /// sets or at an unsatisfying variant, or a malformed root.
    ExtractionBroken,
    // -- cache --------------------------------------------------------
    /// `MvStore` accounting is inconsistent: byte sums, budget, entry
    /// metadata, or admit/evict counters do not balance.
    CacheAccounting,
}

impl VerifyErrorKind {
    /// Short stable name used in rendered diagnostics.
    #[must_use]
    pub fn name(self) -> &'static str {
        use VerifyErrorKind::*;
        match self {
            UnboundColumn => "unbound-column",
            TypeMismatch => "type-mismatch",
            ProjectionNotSubset => "projection-not-subset",
            DagCycle => "dag-cycle",
            DagLinkBroken => "dag-link-broken",
            FingerprintCollision => "fingerprint-collision",
            SubsumptionMismatch => "subsumption-mismatch",
            RootBroken => "root-broken",
            SharableMismatch => "sharable-mismatch",
            PhysLinkBroken => "phys-link-broken",
            OrderNotJustified => "order-not-justified",
            TempDepBroken => "temp-dep-broken",
            CostInvalid => "cost-invalid",
            CostBelowFloor => "cost-below-floor",
            CostAboveBaseline => "cost-above-baseline",
            TotalMismatch => "total-mismatch",
            WarmColdOverlap => "warm-cold-overlap",
            TempOrderViolation => "temp-order-violation",
            ExtractionBroken => "extraction-broken",
            CacheAccounting => "cache-accounting",
        }
    }
}

/// Which IR object a diagnostic points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Site {
    /// An AND-OR DAG group.
    Group(GroupId),
    /// An AND-OR DAG operation.
    Op(OpId),
    /// A physical node.
    Node(PhysNodeId),
    /// A physical operation.
    PhysOp(PhysOpId),
    /// No single anchoring object (whole-structure checks).
    #[default]
    None,
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Site::Group(g) => write!(f, "g{g}"),
            Site::Op(o) => write!(f, "op{o}"),
            Site::Node(n) => write!(f, "n{n}"),
            Site::PhysOp(o) => write!(f, "p{o}"),
            Site::None => f.write_str("-"),
        }
    }
}

/// One verification diagnostic: the failure class, the stage it was
/// found in, the IR object it anchors to, a one-line description of that
/// object, and the message.
#[derive(Debug, Clone)]
pub struct VerifyError {
    /// The failure class (match on this in tests).
    pub kind: VerifyErrorKind,
    /// The pipeline stage the check belongs to.
    pub stage: VerifyStage,
    /// The offending IR object.
    pub site: Site,
    /// A rendered one-line description of the offending object, shown as
    /// the "source line" of the caret diagnostic (may be empty).
    pub detail: String,
    /// Human-readable explanation of the violated invariant.
    pub message: String,
}

impl VerifyError {
    /// Builds a diagnostic.
    pub fn new(
        kind: VerifyErrorKind,
        stage: VerifyStage,
        site: Site,
        detail: impl Into<String>,
        message: impl Into<String>,
    ) -> VerifyError {
        VerifyError {
            kind,
            stage,
            site,
            detail: detail.into(),
            message: message.into(),
        }
    }

    /// Renders a caret diagnostic in the same shape as `SqlError::render`:
    /// the message, a location line, then the offending object with a
    /// caret run underneath.
    ///
    /// ```text
    /// error[dag-cycle]: cycle through group g3
    ///   --> stage dag, site g3
    ///    | g3: Join(g1, g3)
    ///    | ^^^^^^^^^^^^^^^^
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        let line = if self.detail.is_empty() {
            self.site.to_string()
        } else {
            self.detail.clone()
        };
        let width = line.chars().count().max(1);
        format!(
            "error[{}]: {}\n  --> stage {}, site {}\n   | {}\n   | {}",
            self.kind.name(),
            self.message,
            self.stage,
            self.site,
            line,
            "^".repeat(width)
        )
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}/{}] {} (at {})",
            self.stage,
            self.kind.name(),
            self.message,
            self.site
        )
    }
}

impl std::error::Error for VerifyError {}

/// A collection of diagnostics from one or more checks.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// The diagnostics, in discovery order.
    pub errors: Vec<VerifyError>,
}

impl VerifyReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> VerifyReport {
        VerifyReport::default()
    }

    /// Wraps a list of diagnostics.
    #[must_use]
    pub fn from_errors(errors: Vec<VerifyError>) -> VerifyReport {
        VerifyReport { errors }
    }

    /// Absorbs another batch of diagnostics.
    pub fn extend(&mut self, errors: Vec<VerifyError>) {
        self.errors.extend(errors);
    }

    /// True when no invariant was violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Number of diagnostics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// True when the report holds no diagnostics (same as
    /// [`VerifyReport::is_clean`]; present for iterator-style callers).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// True if any diagnostic has the given kind.
    #[must_use]
    pub fn has(&self, kind: VerifyErrorKind) -> bool {
        self.errors.iter().any(|e| e.kind == kind)
    }

    /// Renders every diagnostic, blank-line separated.
    pub fn render(&self) -> String {
        self.errors
            .iter()
            .map(VerifyError::render)
            .collect::<Vec<_>>()
            .join("\n\n")
    }

    /// Panics with the rendered diagnostics if the report is not clean.
    /// `context` names the stage boundary for the panic message.
    ///
    /// # Panics
    ///
    /// When the report contains any diagnostic — that is the point.
    pub fn assert_clean(&self, context: &str) {
        assert!(
            self.is_clean(),
            "IR verification failed at {context} ({} error{}):\n{}",
            self.len(),
            if self.len() == 1 { "" } else { "s" },
            self.render()
        );
    }
}

/// How much verification runs at pipeline stage boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VerifyLevel {
    /// No verification.
    Off,
    /// Structural checks at every stage boundary (logical, DAG links and
    /// acyclicity, physical links and order justification, cost honesty,
    /// extraction soundness, cache accounting).
    Boundaries,
    /// Everything in `Boundaries` plus the expensive audits: the
    /// fingerprint collision audit, the §4.1 sharable cross-check, and
    /// the Volcano no-sharing baseline comparison.
    Full,
}

impl VerifyLevel {
    /// Reads `MQO_VERIFY` (`off`/`0`, `boundaries`/`on`/`1`, `full`/`2`),
    /// parsed **once per process**; unset defaults to `Boundaries` under
    /// `debug_assertions` and `Off` in release builds.
    ///
    /// # Panics
    ///
    /// On a malformed `MQO_VERIFY` value — a typo'd knob silently running
    /// with verification off would report green for a leg that never
    /// verified anything.
    pub fn from_env() -> VerifyLevel {
        static CACHED: std::sync::OnceLock<VerifyLevel> = std::sync::OnceLock::new();
        *CACHED.get_or_init(Self::read_env)
    }

    /// Parses the environment directly, bypassing the process-lifetime
    /// cache (tests that mutate `MQO_VERIFY` mid-process want this).
    ///
    /// # Panics
    ///
    /// On a malformed `MQO_VERIFY` value.
    #[must_use]
    pub fn read_env() -> VerifyLevel {
        match std::env::var("MQO_VERIFY").ok().as_deref() {
            Some("off") | Some("0") => VerifyLevel::Off,
            Some("boundaries") | Some("on") | Some("1") => VerifyLevel::Boundaries,
            Some("full") | Some("2") => VerifyLevel::Full,
            None | Some("") => {
                if cfg!(debug_assertions) {
                    VerifyLevel::Boundaries
                } else {
                    VerifyLevel::Off
                }
            }
            Some(other) => {
                panic!("MQO_VERIFY must be `off`, `boundaries`, or `full`, got `{other}`")
            }
        }
    }

    /// True when any checking should run.
    #[must_use]
    pub fn enabled(self) -> bool {
        self != VerifyLevel::Off
    }

    /// True when the expensive `Full`-only audits should run.
    #[must_use]
    pub fn is_full(self) -> bool {
        self == VerifyLevel::Full
    }
}

impl Default for VerifyLevel {
    /// The environment-selected level ([`VerifyLevel::from_env`]).
    fn default() -> VerifyLevel {
        VerifyLevel::from_env()
    }
}

// ----------------------------------------------------------------------
// Stage-boundary facades. Each returns an empty report at `Off` so
// callers can wire them unconditionally.

/// Verifies a logical batch against the catalog.
#[must_use]
pub fn verify_batch(
    batch: &mqo_logical::Batch,
    catalog: &mqo_catalog::Catalog,
    level: VerifyLevel,
) -> VerifyReport {
    let mut report = VerifyReport::new();
    if !level.enabled() {
        return report;
    }
    for q in &batch.queries {
        report.extend(logical::check_plan(&q.plan, catalog));
    }
    report
}

/// Verifies the expanded AND-OR DAG; `Full` adds the fingerprint
/// collision audit.
#[must_use]
pub fn verify_dag(dag: &Dag, level: VerifyLevel) -> VerifyReport {
    let mut report = VerifyReport::new();
    if !level.enabled() {
        return report;
    }
    report.extend(dag::check_dag(dag));
    if level.is_full() && report.is_clean() {
        report.extend(dag::check_fingerprints(dag));
    }
    report
}

/// Verifies the physicalized DAG (links, order justification, temp-dep
/// registration).
#[must_use]
pub fn verify_pdag(
    dag: &Dag,
    pdag: &PhysicalDag,
    catalog: &mqo_catalog::Catalog,
    level: VerifyLevel,
) -> VerifyReport {
    let mut report = VerifyReport::new();
    if !level.enabled() {
        return report;
    }
    report.extend(physical::check_pdag(dag, pdag, catalog));
    report
}

/// Verifies a search result: cost honesty of the reported total, the
/// extracted plan's structural soundness, and (at `Full`) the no-sharing
/// baseline comparison plus the §4.1 sharable cross-check.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn verify_result(
    dag: &Dag,
    pdag: &PhysicalDag,
    plan: &mqo_physical::ExtractedPlan,
    mat: &mqo_physical::MatSet,
    warm: &mqo_physical::MatSet,
    reported: mqo_cost::Cost,
    reported_sharable: usize,
    level: VerifyLevel,
) -> VerifyReport {
    let mut report = VerifyReport::new();
    if !level.enabled() {
        return report;
    }
    let fresh = mqo_physical::CostTable::compute(pdag, mat);
    report.extend(cost::check_cost_table(pdag, &fresh, mat));
    report.extend(cost::check_reported_total(
        pdag, &fresh, mat, warm, reported,
    ));
    report.extend(extract::check_plan(pdag, &fresh, plan, mat, warm, reported));
    if level.is_full() {
        report.extend(cost::check_against_baseline(pdag, reported));
        report.extend(dag::check_sharable(dag, reported_sharable));
    }
    report
}

/// Verifies the materialized-view cache accounting.
#[must_use]
pub fn verify_store(store: &mqo_exec::MvStore, level: VerifyLevel) -> VerifyReport {
    let mut report = VerifyReport::new();
    if !level.enabled() {
        return report;
    }
    report.extend(cache::check_store(store));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shape_matches_sql_errors() {
        let err = VerifyError::new(
            VerifyErrorKind::DagCycle,
            VerifyStage::Dag,
            Site::None,
            "g3: Join(g1, g3)",
            "cycle through group g3",
        );
        let out = err.render();
        assert!(
            out.starts_with("error[dag-cycle]: cycle through group g3"),
            "{out}"
        );
        assert!(out.contains("--> stage dag"), "{out}");
        assert!(out.contains("| ^^^^"), "{out}");
    }

    #[test]
    fn report_collects_and_asserts() {
        let mut r = VerifyReport::new();
        assert!(r.is_clean());
        r.extend(vec![VerifyError::new(
            VerifyErrorKind::CacheAccounting,
            VerifyStage::Cache,
            Site::None,
            "",
            "bytes off",
        )]);
        assert!(r.has(VerifyErrorKind::CacheAccounting));
        assert!(!r.has(VerifyErrorKind::DagCycle));
        let msg = std::panic::catch_unwind(|| r.assert_clean("test")).expect_err("must panic");
        let s = msg.downcast_ref::<String>().expect("string panic");
        assert!(s.contains("bytes off"), "{s}");
    }

    #[test]
    fn level_ordering() {
        assert!(VerifyLevel::Off < VerifyLevel::Boundaries);
        assert!(VerifyLevel::Boundaries < VerifyLevel::Full);
        assert!(VerifyLevel::Full.enabled() && VerifyLevel::Full.is_full());
        assert!(!VerifyLevel::Off.enabled());
    }
}
