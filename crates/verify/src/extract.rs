//! Extracted-plan checks: the materialization schedule must be exactly
//! executable by the plan interpreter.
//!
//! The core of this module is a dry-run of `mqo_exec::engine`'s
//! traversal: temps are "built" in schedule order, and every temp read
//! must resolve to a temp that is already available (warm, or built
//! strictly earlier). The executor silently *recomputes* on a miss —
//! which still produces correct answers but diverges from the costed
//! plan, so it is a verification error, not a runtime one.

use crate::cost::above;
use crate::{Site, VerifyError, VerifyErrorKind, VerifyStage};
use mqo_cost::Cost;
use mqo_physical::{Algo, ChosenOp, CostTable, ExtractedPlan, MatSet, PhysNodeId, PhysicalDag};
use mqo_util::FxHashSet;

fn err(kind: VerifyErrorKind, site: Site, detail: String, message: String) -> VerifyError {
    VerifyError::new(kind, VerifyStage::Extraction, site, detail, message)
}

fn node_detail(pdag: &PhysicalDag, n: PhysNodeId) -> String {
    if n.index() >= pdag.num_nodes() {
        return format!("n{n} (out of range)");
    }
    let node = pdag.node(n);
    format!("n{n}: g{}:{}", node.group, node.prop)
}

/// Checks an extracted plan against the physical DAG, the materialized
/// set it was extracted under, the warm set, and the strategy's reported
/// total. `fresh` must be `CostTable::compute(pdag, mat)`.
#[must_use]
pub fn check_plan(
    pdag: &PhysicalDag,
    fresh: &CostTable,
    plan: &ExtractedPlan,
    mat: &MatSet,
    warm: &MatSet,
    reported: Cost,
) -> Vec<VerifyError> {
    let mut errors = Vec::new();

    // Root shape.
    if plan.root != pdag.root() {
        errors.push(err(
            VerifyErrorKind::ExtractionBroken,
            Site::Node(plan.root),
            node_detail(pdag, plan.root),
            format!(
                "plan root n{} is not the physical root n{}",
                plan.root,
                pdag.root()
            ),
        ));
        return errors;
    }
    let root_op = match plan.choices.get(&plan.root) {
        Some(&ChosenOp::Compute(o)) => {
            let op = pdag.op(o);
            if !matches!(op.algo, Algo::Root) || op.node != plan.root {
                errors.push(err(
                    VerifyErrorKind::ExtractionBroken,
                    Site::PhysOp(o),
                    node_detail(pdag, plan.root),
                    "plan root's choice is not a Root op of the root node".to_string(),
                ));
                return errors;
            }
            o
        }
        other => {
            errors.push(err(
                VerifyErrorKind::ExtractionBroken,
                Site::Node(plan.root),
                node_detail(pdag, plan.root),
                format!("plan root must have a Compute choice, found {other:?}"),
            ));
            return errors;
        }
    };
    if plan.query_roots != pdag.op(root_op).inputs {
        errors.push(err(
            VerifyErrorKind::ExtractionBroken,
            Site::Node(plan.root),
            node_detail(pdag, plan.root),
            "plan.query_roots disagrees with the root op's inputs".to_string(),
        ));
    }

    // Warm/cold set discipline.
    let warm_set: FxHashSet<PhysNodeId> = plan.warm_used.iter().copied().collect();
    let cold_set: FxHashSet<PhysNodeId> = plan.materialized.iter().copied().collect();
    for &n in warm_set.intersection(&cold_set) {
        errors.push(err(
            VerifyErrorKind::WarmColdOverlap,
            Site::Node(n),
            node_detail(pdag, n),
            format!("n{n} is scheduled both as a cold build and as a warm cache read"),
        ));
    }
    for &w in &plan.warm_used {
        if !warm.contains(w) {
            errors.push(err(
                VerifyErrorKind::WarmColdOverlap,
                Site::Node(w),
                node_detail(pdag, w),
                format!("warm_used lists n{w}, which is not in the warm set"),
            ));
        }
        if matches!(plan.choices.get(&w), Some(&ChosenOp::Compute(_))) {
            errors.push(err(
                VerifyErrorKind::WarmColdOverlap,
                Site::Node(w),
                node_detail(pdag, w),
                format!("warm node n{w} has a Compute choice — it would be rebuilt"),
            ));
        }
    }
    for &m in &plan.materialized {
        if !mat.contains(m) {
            errors.push(err(
                VerifyErrorKind::WarmColdOverlap,
                Site::Node(m),
                node_detail(pdag, m),
                format!("materialized lists n{m}, which is not in the strategy's mat set"),
            ));
        }
    }

    // Built exactly once.
    {
        let mut seen: FxHashSet<PhysNodeId> = FxHashSet::default();
        for &m in &plan.materialized {
            if !seen.insert(m) {
                errors.push(err(
                    VerifyErrorKind::TempOrderViolation,
                    Site::Node(m),
                    node_detail(pdag, m),
                    format!("temp n{m} appears twice in the materialization schedule"),
                ));
            }
        }
    }

    // Dry-run the executor: build temps in schedule order, then evaluate
    // the query roots; every temp read must already be available.
    let mut walker = Walker {
        pdag,
        plan,
        available: warm_set,
        walked: FxHashSet::default(),
        computes: FxHashSet::default(),
        errors: &mut errors,
    };
    for &m in &plan.materialized {
        walker.walk_def(m);
        walker.available.insert(m);
    }
    for &q in &plan.query_roots.clone() {
        walker.walk_use(q);
    }
    let computes = walker.computes.clone();

    // Cost honesty of the stamped total: it must cover (a) the sum of
    // local-cost floors of every operator the plan actually runs and
    // (b) a fresh recomputation of its own schedule; and it must not
    // exceed what the strategy reported upward.
    let mut floor = Cost::ZERO;
    for &o in &computes {
        floor += pdag.op(o).local;
    }
    if above(floor, plan.total_cost) {
        errors.push(err(
            VerifyErrorKind::CostBelowFloor,
            Site::None,
            format!("total {:?}, floor {:?}", plan.total_cost, floor),
            "plan total is below the sum of its chosen operators' local-cost floors".to_string(),
        ));
    }
    let mut expected = fresh.node_cost[plan.root.index()];
    for &m in &plan.materialized {
        expected += fresh.node_cost[m.index()] + pdag.matcost(m);
    }
    if above(expected, plan.total_cost) {
        errors.push(err(
            VerifyErrorKind::TotalMismatch,
            Site::None,
            format!(
                "stamped {:?}, schedule recompute {:?}",
                plan.total_cost, expected
            ),
            "plan's stamped total understates a fresh recomputation of its own schedule"
                .to_string(),
        ));
    }
    if above(plan.total_cost, reported) {
        errors.push(err(
            VerifyErrorKind::TotalMismatch,
            Site::None,
            format!("stamped {:?}, reported {reported:?}", plan.total_cost),
            "plan's stamped total exceeds the strategy's reported total".to_string(),
        ));
    }

    errors
}

/// Dry-run traversal state, mirroring `mqo_exec::engine::Executor`.
struct Walker<'a> {
    pdag: &'a PhysicalDag,
    plan: &'a ExtractedPlan,
    /// Temps readable right now: warm seeds plus schedule prefix.
    available: FxHashSet<PhysNodeId>,
    /// Definitions already walked (first walk is under the smallest
    /// availability set, so it is the strictest — memoizing is safe).
    walked: FxHashSet<PhysNodeId>,
    /// Every Compute op the plan actually runs.
    computes: FxHashSet<mqo_physical::PhysOpId>,
    errors: &'a mut Vec<VerifyError>,
}

impl Walker<'_> {
    /// A *use* of `n`: reads a temp when the plan shares it, otherwise
    /// computes inline.
    fn walk_use(&mut self, n: PhysNodeId) {
        if let Some(t) = self.plan.reuse_of(n) {
            if t != n {
                // Cross-variant read: must be the same group, with a
                // property at least as strong as the use site's.
                if t.index() >= self.pdag.num_nodes()
                    || self.pdag.node(t).group != self.pdag.node(n).group
                    || !self.pdag.node(t).prop.satisfies(&self.pdag.node(n).prop)
                {
                    self.errors.push(err(
                        VerifyErrorKind::ExtractionBroken,
                        Site::Node(n),
                        node_detail(self.pdag, n),
                        format!(
                            "use of n{n} reuses n{t}, which is not a satisfying variant of the \
                             same group"
                        ),
                    ));
                    return;
                }
            }
            if !self.available.contains(&t) {
                self.errors.push(err(
                    VerifyErrorKind::TempOrderViolation,
                    Site::Node(n),
                    node_detail(self.pdag, n),
                    format!(
                        "use of n{n} reads temp n{t} before the schedule builds it — the \
                         executor would silently recompute"
                    ),
                ));
            }
            return;
        }
        self.walk_def(n);
    }

    /// The computing *definition* of `n`.
    fn walk_def(&mut self, n: PhysNodeId) {
        if !self.walked.insert(n) {
            return;
        }
        match self.plan.choices.get(&n) {
            Some(&ChosenOp::Compute(o)) => {
                // The executor runs the chosen op as-is, so a Compute
                // choice may legally point at an op of a *satisfying
                // variant* in the same group (e.g. computing the sorted
                // variant inline at an unordered use site) — the same
                // contract the cross-variant Reuse check enforces.
                let owner_ok = o.index() < self.pdag.num_ops() && {
                    let owner = self.pdag.op(o).node;
                    owner == n
                        || (self.pdag.node(owner).group == self.pdag.node(n).group
                            && self
                                .pdag
                                .node(owner)
                                .prop
                                .satisfies(&self.pdag.node(n).prop))
                };
                if !owner_ok {
                    self.errors.push(err(
                        VerifyErrorKind::ExtractionBroken,
                        Site::Node(n),
                        node_detail(self.pdag, n),
                        format!(
                            "choice for n{n} is p{o}, which is not an op of n{n} or of a \
                             satisfying variant"
                        ),
                    ));
                    return;
                }
                self.computes.insert(o);
                let op = self.pdag.op(o);
                // A temp-probing op reads its source temp like any other
                // shared read: it must already be available.
                if let Some(td) = op.temp_dep {
                    let source = self
                        .available
                        .iter()
                        .chain(self.plan.materialized.iter())
                        .copied()
                        .find(|&m| {
                            m.index() < self.pdag.num_nodes()
                                && self.pdag.node(m).group == td.source
                                && self.pdag.node(m).prop.leading_col() == Some(td.key)
                        });
                    match source {
                        Some(src) if self.available.contains(&src) => {}
                        _ => self.errors.push(err(
                            VerifyErrorKind::TempOrderViolation,
                            Site::PhysOp(o),
                            node_detail(self.pdag, n),
                            format!(
                                "temp-probing op p{o} needs a temp of g{} sorted on c{} that \
                                 the schedule has not built yet",
                                td.source, td.key
                            ),
                        )),
                    }
                }
                for &input in &op.inputs.clone() {
                    self.walk_use(input);
                }
            }
            Some(&ChosenOp::Reuse(t)) => {
                // A definition that is itself a reuse (warm nodes): the
                // target must be available.
                if !self.available.contains(&t) {
                    self.errors.push(err(
                        VerifyErrorKind::TempOrderViolation,
                        Site::Node(n),
                        node_detail(self.pdag, n),
                        format!("definition of n{n} reuses n{t}, which is not available"),
                    ));
                }
            }
            None => {
                self.errors.push(err(
                    VerifyErrorKind::ExtractionBroken,
                    Site::Node(n),
                    node_detail(self.pdag, n),
                    format!("plan references n{n} but has no choice for it"),
                ));
            }
        }
    }
}
