//! Every [`VerifyErrorKind`] is proven live: each test builds
//! deliberately broken IR — through the `#[doc(hidden)]` corruption seams
//! the construction APIs otherwise refuse to expose — and asserts the
//! exact diagnostic fires. A checker nobody can trip is dead weight; this
//! file is the existence proof for the whole catalog.

use std::sync::Arc;

use mqo_catalog::{Catalog, ColId};
use mqo_cost::{Cost, CostParams};
use mqo_dag::{Dag, DagConfig, GroupId, OpId, OpKind};
use mqo_exec::{MvStore, Table};
use mqo_expr::{Atom, CmpOp, Predicate, Value};
use mqo_logical::{Batch, LogicalPlan, Query};
use mqo_physical::{
    Algo, CostTable, ExtractedPlan, MatSet, PhysNodeId, PhysOpId, PhysicalDag, TempDep,
};
use mqo_verify::{verify_dag, verify_store, VerifyError, VerifyErrorKind, VerifyLevel};

// ---------------------------------------------------------------- fixtures

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    for name in ["fa", "fb"] {
        let _ = cat
            .table(name)
            .rows(10_000.0)
            .int_key(&format!("{name}k"))
            .int_uniform(&format!("{name}v"), 0, 999)
            .build();
    }
    cat
}

fn join_plan(cat: &Catalog) -> LogicalPlan {
    let pred = Predicate::atom(Atom::eq_cols(cat.col("fa", "fav"), cat.col("fb", "fbk")));
    LogicalPlan::scan(cat.table_by_name("fa").unwrap().id)
        .join(LogicalPlan::scan(cat.table_by_name("fb").unwrap().id), pred)
}

/// Two identical join queries: every group below the root is shared.
fn shared_batch(cat: &Catalog) -> Batch {
    let q = join_plan(cat);
    Batch::of(vec![Query::new("q1", q.clone()), Query::new("q2", q)])
}

fn expanded(cat: &Catalog) -> Dag {
    Dag::expand(&shared_batch(cat), cat, DagConfig::default())
}

fn physical(cat: &Catalog, dag: &Dag) -> PhysicalDag {
    PhysicalDag::build(dag, cat, CostParams::default())
}

/// The shared join group (first input of the pseudo-root).
fn join_group(dag: &Dag) -> GroupId {
    dag.find(dag.op_inputs(dag.root_op())[0])
}

fn join_op(dag: &Dag, g: GroupId) -> OpId {
    dag.group_ops(g)
        .find(|&o| matches!(dag.op(o).kind, OpKind::Join(_)))
        .expect("the shared group has a Join op")
}

fn has(errors: &[VerifyError], kind: VerifyErrorKind) -> bool {
    errors.iter().any(|e| e.kind == kind)
}

fn render(errors: &[VerifyError]) -> String {
    errors
        .iter()
        .map(VerifyError::render)
        .collect::<Vec<_>>()
        .join("\n\n")
}

// ---------------------------------------------------------------- baseline

/// The pristine pipeline must verify clean at `Full` — otherwise every
/// negative test below would be vacuous.
#[test]
fn pristine_pipeline_is_clean_at_full() {
    let cat = catalog();
    let dag = expanded(&cat);
    let report = verify_dag(&dag, VerifyLevel::Full);
    assert!(report.is_clean(), "{}", report.render());
    let pdag = physical(&cat, &dag);
    let errs = mqo_verify::physical::check_pdag(&dag, &pdag, &cat);
    assert!(errs.is_empty(), "{}", render(&errs));
    let mat = MatSet::new();
    let table = CostTable::compute(&pdag, &mat);
    assert!(mqo_verify::cost::check_cost_table(&pdag, &table, &mat).is_empty());
    let plan = ExtractedPlan::extract(&pdag, &table, &mat);
    let errs = mqo_verify::extract::check_plan(
        &pdag,
        &table,
        &plan,
        &mat,
        &MatSet::new(),
        plan.total_cost,
    );
    assert!(errs.is_empty(), "{}", render(&errs));
}

// ----------------------------------------------------------------- logical

#[test]
fn unbound_column_fires() {
    let cat = catalog();
    // Selection over `fa` referencing a column of `fb`.
    let plan = LogicalPlan::scan(cat.table_by_name("fa").unwrap().id).select(Predicate::atom(
        Atom::cmp(cat.col("fb", "fbv"), CmpOp::Eq, 1i64),
    ));
    let errs = mqo_verify::logical::check_plan(&plan, &cat);
    assert!(
        has(&errs, VerifyErrorKind::UnboundColumn),
        "{}",
        render(&errs)
    );
}

#[test]
fn type_mismatch_fires() {
    let cat = catalog();
    // Integer column compared to a string constant.
    let plan = LogicalPlan::scan(cat.table_by_name("fa").unwrap().id).select(Predicate::atom(
        Atom::cmp(cat.col("fa", "fav"), CmpOp::Eq, "widget"),
    ));
    let errs = mqo_verify::logical::check_plan(&plan, &cat);
    assert!(
        has(&errs, VerifyErrorKind::TypeMismatch),
        "{}",
        render(&errs)
    );
}

#[test]
fn projection_not_subset_fires() {
    let cat = catalog();
    // Projecting a `fb` column out of a bare scan of `fa`.
    let plan =
        LogicalPlan::scan(cat.table_by_name("fa").unwrap().id).project(vec![cat.col("fb", "fbv")]);
    let errs = mqo_verify::logical::check_plan(&plan, &cat);
    assert!(
        has(&errs, VerifyErrorKind::ProjectionNotSubset),
        "{}",
        render(&errs)
    );
}

// --------------------------------------------------------------------- dag

#[test]
fn dag_cycle_fires() {
    let cat = catalog();
    let mut dag = expanded(&cat);
    let g = join_group(&dag);
    let o = join_op(&dag, g);
    // The join now reads its own group: root → g → g → …
    dag.testing_set_op_input(o, 0, g);
    let report = verify_dag(&dag, VerifyLevel::Boundaries);
    assert!(report.has(VerifyErrorKind::DagCycle), "{}", report.render());
}

#[test]
fn dag_link_broken_fires() {
    let cat = catalog();
    let mut dag = expanded(&cat);
    let g = join_group(&dag);
    // The root op still reads g, but g no longer back-links to it.
    dag.testing_clear_parents(g);
    let report = verify_dag(&dag, VerifyLevel::Boundaries);
    assert!(
        report.has(VerifyErrorKind::DagLinkBroken),
        "{}",
        report.render()
    );
}

#[test]
fn fingerprint_collision_fires() {
    let cat = catalog();
    let mut dag = expanded(&cat);
    let g = join_group(&dag);
    let o = join_op(&dag, g);
    let kind = dag.op(o).kind.clone();
    let inputs = dag.op_inputs(o);
    // A structurally valid twin of the join group that unification would
    // normally have merged: same op over the same inputs, new group.
    let twin = dag.testing_new_group_like(g);
    dag.testing_add_raw_op(kind, inputs, twin, false);
    let root_op = dag.root_op();
    dag.testing_set_op_input(root_op, 1, twin);
    dag.renumber();
    // Structurally fine — only the Full-level audit sees the conflation.
    let report = verify_dag(&dag, VerifyLevel::Boundaries);
    assert!(report.is_clean(), "{}", report.render());
    let report = verify_dag(&dag, VerifyLevel::Full);
    assert!(
        report.has(VerifyErrorKind::FingerprintCollision),
        "{}",
        report.render()
    );
}

#[test]
fn subsumption_mismatch_fires() {
    let cat = catalog();
    let mut dag = expanded(&cat);
    let g = join_group(&dag);
    let o = join_op(&dag, g);
    let kind = dag.op(o).kind.clone();
    let inputs = dag.op_inputs(o);
    // §2.1 derivations are unary Select/Aggregate; a binary Join marked
    // as subsumption-derived is a lie.
    dag.testing_add_raw_op(kind, inputs, g, true);
    let report = verify_dag(&dag, VerifyLevel::Boundaries);
    assert!(
        report.has(VerifyErrorKind::SubsumptionMismatch),
        "{}",
        report.render()
    );
}

#[test]
fn root_broken_fires() {
    let cat = catalog();
    // Arity mismatch: two query inputs, one invocation weight.
    let mut dag = expanded(&cat);
    dag.testing_set_root_weights(vec![1.0]);
    let report = verify_dag(&dag, VerifyLevel::Boundaries);
    assert!(
        report.has(VerifyErrorKind::RootBroken),
        "{}",
        report.render()
    );

    // Non-positive weight.
    let mut dag = expanded(&cat);
    dag.testing_set_root_weights(vec![1.0, -3.0]);
    let report = verify_dag(&dag, VerifyLevel::Boundaries);
    assert!(
        report.has(VerifyErrorKind::RootBroken),
        "{}",
        report.render()
    );

    // A DAG that was never rooted at all.
    let report = verify_dag(&Dag::empty(DagConfig::default()), VerifyLevel::Boundaries);
    assert!(
        report.has(VerifyErrorKind::RootBroken),
        "{}",
        report.render()
    );
}

#[test]
fn sharable_mismatch_fires() {
    let cat = catalog();
    let dag = expanded(&cat);
    let actual = mqo_dag::sharable_groups(&dag).len();
    assert!(actual > 0, "two identical queries must share something");
    let errs = mqo_verify::dag::check_sharable(&dag, actual + 1);
    assert!(
        has(&errs, VerifyErrorKind::SharableMismatch),
        "{}",
        render(&errs)
    );
    // The honest count is clean; 0 means "not computed" and is skipped.
    assert!(mqo_verify::dag::check_sharable(&dag, actual).is_empty());
    assert!(mqo_verify::dag::check_sharable(&dag, 0).is_empty());
}

// ---------------------------------------------------------------- physical

#[test]
fn phys_link_broken_fires() {
    let cat = catalog();
    let dag = expanded(&cat);
    let mut pdag = physical(&cat, &dag);
    // A node with its implementing ops torn off: the node-side check sees
    // an unimplemented node, the op-side check sees orphaned owners.
    pdag.testing_node_mut(PhysNodeId::from_index(0)).ops.clear();
    let errs = mqo_verify::physical::check_pdag(&dag, &pdag, &cat);
    assert!(
        has(&errs, VerifyErrorKind::PhysLinkBroken),
        "{}",
        render(&errs)
    );
}

#[test]
fn order_not_justified_fires() {
    let cat = catalog();
    let dag = expanded(&cat);
    let mut pdag = physical(&cat, &dag);
    // A Sort enforcer attached to a `sorted[..]` node that no longer
    // sorts anything delivers `any` — the node's promise is unbacked.
    let o = (0..pdag.num_ops())
        .map(PhysOpId::from_index)
        .find(|&o| matches!(pdag.op(o).algo, Algo::Sort { .. }))
        .expect("a join pdag has Sort enforcers");
    if let Algo::Sort { keys } = &mut pdag.testing_op_mut(o).algo {
        keys.clear();
    }
    let errs = mqo_verify::physical::check_pdag(&dag, &pdag, &cat);
    assert!(
        has(&errs, VerifyErrorKind::OrderNotJustified),
        "{}",
        render(&errs)
    );
}

#[test]
fn temp_dep_broken_fires() {
    let cat = catalog();
    let dag = expanded(&cat);
    let mut pdag = physical(&cat, &dag);
    // A base-table scan never probes a temp; a temp_dep on it is bogus.
    let o = (0..pdag.num_ops())
        .map(PhysOpId::from_index)
        .find(|&o| matches!(pdag.op(o).algo, Algo::TableScan { .. }))
        .expect("pdag has a TableScan");
    let g = pdag.node(pdag.op(o).node).group;
    pdag.testing_op_mut(o).temp_dep = Some(TempDep {
        source: g,
        key: ColId(0),
        extra: Cost::ZERO,
    });
    let errs = mqo_verify::physical::check_pdag(&dag, &pdag, &cat);
    assert!(
        has(&errs, VerifyErrorKind::TempDepBroken),
        "{}",
        render(&errs)
    );

    // The dual direction: a temp-probing op whose watcher registration
    // was lost.
    let mut pdag = physical(&cat, &dag);
    let probing = (0..pdag.num_ops())
        .map(PhysOpId::from_index)
        .find(|&o| pdag.op(o).temp_dep.is_some());
    if let Some(_o) = probing {
        pdag.testing_clear_temp_watchers();
        let errs = mqo_verify::physical::check_pdag(&dag, &pdag, &cat);
        assert!(
            has(&errs, VerifyErrorKind::TempDepBroken),
            "{}",
            render(&errs)
        );
    }
}

// -------------------------------------------------------------------- cost

#[test]
fn cost_invalid_fires() {
    let cat = catalog();
    let dag = expanded(&cat);
    let pdag = physical(&cat, &dag);
    let mat = MatSet::new();

    // NaN creeping into an op cost.
    let mut table = CostTable::compute(&pdag, &mat);
    table.op_cost[0] = Cost(f64::NAN);
    let errs = mqo_verify::cost::check_cost_table(&pdag, &table, &mat);
    assert!(
        has(&errs, VerifyErrorKind::CostInvalid),
        "{}",
        render(&errs)
    );

    // A negative node cost (books no longer the min over the ops').
    let mut table = CostTable::compute(&pdag, &mat);
    table.node_cost[pdag.root().index()] = Cost(-1.0);
    let errs = mqo_verify::cost::check_cost_table(&pdag, &table, &mat);
    assert!(
        has(&errs, VerifyErrorKind::CostInvalid),
        "{}",
        render(&errs)
    );
}

#[test]
fn cost_below_floor_fires() {
    let cat = catalog();
    let dag = expanded(&cat);
    let pdag = physical(&cat, &dag);
    let mat = MatSet::new();
    let table = CostTable::compute(&pdag, &mat);
    let mut plan = ExtractedPlan::extract(&pdag, &table, &mat);
    // A total of zero is below the sum of the chosen operators' local
    // floors — no plan runs for free.
    plan.total_cost = Cost::ZERO;
    let errs =
        mqo_verify::extract::check_plan(&pdag, &table, &plan, &mat, &MatSet::new(), Cost::ZERO);
    assert!(
        has(&errs, VerifyErrorKind::CostBelowFloor),
        "{}",
        render(&errs)
    );
}

#[test]
fn cost_above_baseline_fires() {
    let cat = catalog();
    let dag = expanded(&cat);
    let pdag = physical(&cat, &dag);
    let errs = mqo_verify::cost::check_against_baseline(&pdag, Cost(1e12));
    assert!(
        has(&errs, VerifyErrorKind::CostAboveBaseline),
        "{}",
        render(&errs)
    );
}

#[test]
fn total_mismatch_fires() {
    let cat = catalog();
    let dag = expanded(&cat);
    let pdag = physical(&cat, &dag);
    let mat = MatSet::new();
    let table = CostTable::compute(&pdag, &mat);
    // Reporting zero understates the fresh bottom-up recomputation.
    let errs =
        mqo_verify::cost::check_reported_total(&pdag, &table, &mat, &MatSet::new(), Cost::ZERO);
    assert!(
        has(&errs, VerifyErrorKind::TotalMismatch),
        "{}",
        render(&errs)
    );
}

// -------------------------------------------------------------- extraction

#[test]
fn warm_cold_overlap_fires() {
    let cat = catalog();
    let dag = expanded(&cat);
    let pdag = physical(&cat, &dag);
    let mat = MatSet::new();
    let table = CostTable::compute(&pdag, &mat);
    let mut plan = ExtractedPlan::extract(&pdag, &table, &mat);
    // Claiming a warm read of a node the warm set does not contain (and
    // which the plan itself computes).
    plan.warm_used.push(plan.query_roots[0]);
    let errs = mqo_verify::extract::check_plan(
        &pdag,
        &table,
        &plan,
        &mat,
        &MatSet::new(),
        plan.total_cost,
    );
    assert!(
        has(&errs, VerifyErrorKind::WarmColdOverlap),
        "{}",
        render(&errs)
    );
}

#[test]
fn temp_order_violation_fires() {
    let cat = catalog();
    let dag = expanded(&cat);
    let pdag = physical(&cat, &dag);
    // Materialize the shared query-root node, then schedule its build
    // twice — built-exactly-once is the schedule's core contract.
    let probe = ExtractedPlan::extract(
        &pdag,
        &CostTable::compute(&pdag, &MatSet::new()),
        &MatSet::new(),
    );
    let shared = probe.query_roots[0];
    let mut mat = MatSet::new();
    mat.insert(&pdag, shared);
    let table = CostTable::compute(&pdag, &mat);
    let mut plan = ExtractedPlan::extract(&pdag, &table, &mat);
    plan.materialized.push(shared);
    plan.materialized.push(shared);
    let errs = mqo_verify::extract::check_plan(
        &pdag,
        &table,
        &plan,
        &mat,
        &MatSet::new(),
        plan.total_cost,
    );
    assert!(
        has(&errs, VerifyErrorKind::TempOrderViolation),
        "{}",
        render(&errs)
    );
}

#[test]
fn extraction_broken_fires() {
    let cat = catalog();
    let dag = expanded(&cat);
    let pdag = physical(&cat, &dag);
    let mat = MatSet::new();
    let table = CostTable::compute(&pdag, &mat);
    let mut plan = ExtractedPlan::extract(&pdag, &table, &mat);
    // The plan references the query root but no longer says how to
    // obtain it.
    plan.choices.remove(&plan.query_roots[0]);
    let errs = mqo_verify::extract::check_plan(
        &pdag,
        &table,
        &plan,
        &mat,
        &MatSet::new(),
        plan.total_cost,
    );
    assert!(
        has(&errs, VerifyErrorKind::ExtractionBroken),
        "{}",
        render(&errs)
    );
}

// ------------------------------------------------------------------- cache

#[test]
fn cache_accounting_fires() {
    let table = Arc::new(Table::new(
        vec![ColId(0)],
        (0..100).map(|i| vec![Value::Int(i)]).collect(),
    ));
    let mut store = MvStore::new(1 << 20);
    store.admit(0xfeed, table, 10.0, 1.0, 0);
    let report = verify_store(&store, VerifyLevel::Boundaries);
    assert!(report.is_clean(), "{}", report.render());
    // Books cooked: the charged total no longer matches the entries.
    store.testing_set_bytes_used(123);
    let report = verify_store(&store, VerifyLevel::Boundaries);
    assert!(
        report.has(VerifyErrorKind::CacheAccounting),
        "{}",
        report.render()
    );
    // `Off` skips even a broken store.
    assert!(verify_store(&store, VerifyLevel::Off).is_clean());
}
