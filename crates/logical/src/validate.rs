//! Plan validation: catches malformed workload definitions early.

use crate::LogicalPlan;
use mqo_catalog::{Catalog, ColId};
use mqo_util::FxHashSet;

/// Why a plan failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A predicate/aggregate/projection references a column its input does
    /// not produce.
    UnboundColumn {
        /// The offending column.
        col: ColId,
        /// Operator description.
        at: &'static str,
    },
    /// A join's inputs produce overlapping output schemas (e.g. an
    /// unprojected self-reference). Intra-query reuse of a subexpression
    /// is legal — the paper's Q2-D depends on it — but the two sides must
    /// be projected to disjoint columns so that output rows stay
    /// unambiguous.
    OverlappingJoin {
        /// A column produced by both join inputs.
        col: ColId,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::UnboundColumn { col, at } => {
                write!(f, "column c{col} not produced by input of {at}")
            }
            ValidationError::OverlappingJoin { col } => {
                write!(f, "join inputs both produce column c{col}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates column bindings and join-schema disjointness in `plan`.
///
/// Parameter atoms are exempt from binding checks: they are resolved by an
/// enclosing query at run time.
pub fn validate(plan: &LogicalPlan, catalog: &Catalog) -> Result<(), ValidationError> {
    validate_cols(plan, catalog).map(|_| ())
}

fn validate_cols(
    plan: &LogicalPlan,
    catalog: &Catalog,
) -> Result<FxHashSet<ColId>, ValidationError> {
    let check = |cols: &[ColId],
                 avail: &FxHashSet<ColId>,
                 at: &'static str|
     -> Result<(), ValidationError> {
        for &c in cols {
            if !avail.contains(&c) {
                return Err(ValidationError::UnboundColumn { col: c, at });
            }
        }
        Ok(())
    };
    match plan {
        LogicalPlan::Scan(t) => Ok(catalog.table_ref(*t).columns.iter().copied().collect()),
        LogicalPlan::Select { pred, input } => {
            let avail = validate_cols(input, catalog)?;
            check(&pred.columns(), &avail, "Select")?;
            Ok(avail)
        }
        LogicalPlan::Join { pred, left, right } => {
            let l = validate_cols(left, catalog)?;
            let r = validate_cols(right, catalog)?;
            if let Some(&col) = l.intersection(&r).next() {
                return Err(ValidationError::OverlappingJoin { col });
            }
            let mut avail = l;
            avail.extend(r);
            check(&pred.columns(), &avail, "Join")?;
            Ok(avail)
        }
        LogicalPlan::Aggregate { keys, aggs, input } => {
            let avail = validate_cols(input, catalog)?;
            check(keys, &avail, "Aggregate keys")?;
            for a in aggs {
                let mut cols = vec![];
                a.arg.collect_cols(&mut cols);
                check(&cols, &avail, "Aggregate arg")?;
            }
            let mut out: FxHashSet<ColId> = keys.iter().copied().collect();
            out.extend(aggs.iter().map(|a| a.output));
            Ok(out)
        }
        LogicalPlan::Project { cols, input } => {
            let avail = validate_cols(input, catalog)?;
            check(cols, &avail, "Project")?;
            Ok(cols.iter().copied().collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_catalog::Catalog;
    use mqo_expr::{Atom, CmpOp, Predicate};

    fn setup() -> Catalog {
        let mut cat = Catalog::new();
        let _ = cat.table("r").rows(10.0).int_key("rk").build();
        let _ = cat.table("s").rows(10.0).int_key("sk").build();
        cat
    }

    #[test]
    fn valid_plan_passes() {
        let cat = setup();
        let r = cat.table_by_name("r").unwrap().id;
        let s = cat.table_by_name("s").unwrap().id;
        let plan = LogicalPlan::scan(r).join(
            LogicalPlan::scan(s),
            Predicate::atom(Atom::eq_cols(cat.col("r", "rk"), cat.col("s", "sk"))),
        );
        assert!(validate(&plan, &cat).is_ok());
    }

    #[test]
    fn unbound_column_detected() {
        let cat = setup();
        let r = cat.table_by_name("r").unwrap().id;
        let plan = LogicalPlan::scan(r).select(Predicate::atom(Atom::cmp(
            cat.col("s", "sk"),
            CmpOp::Lt,
            5i64,
        )));
        assert!(matches!(
            validate(&plan, &cat),
            Err(ValidationError::UnboundColumn { .. })
        ));
    }

    #[test]
    fn unprojected_self_join_detected() {
        let cat = setup();
        let r = cat.table_by_name("r").unwrap().id;
        let plan = LogicalPlan::scan(r).join(LogicalPlan::scan(r), Predicate::true_());
        assert_eq!(
            validate(&plan, &cat),
            Err(ValidationError::OverlappingJoin {
                col: cat.col("r", "rk")
            })
        );
    }

    #[test]
    fn projected_intra_query_reuse_is_legal() {
        // the Q2-D pattern: a subexpression used twice, one side projected
        // to derived/disjoint columns
        let mut cat = setup();
        let total = cat.derived_column(
            "total",
            mqo_catalog::ColType::Float,
            mqo_catalog::ColStats::opaque(10.0),
        );
        let r = cat.table_by_name("r").unwrap().id;
        let agg = LogicalPlan::scan(r).aggregate(
            vec![],
            vec![mqo_expr::AggExpr::new(
                mqo_expr::AggFunc::Sum,
                mqo_expr::ScalarExpr::col(cat.col("r", "rk")),
                total,
            )],
        );
        let plan = LogicalPlan::scan(r).join(
            agg,
            Predicate::atom(Atom::col_cmp(cat.col("r", "rk"), CmpOp::Lt, total)),
        );
        assert!(validate(&plan, &cat).is_ok());
    }

    #[test]
    fn projection_narrows_bindings() {
        let cat = setup();
        let r = cat.table_by_name("r").unwrap().id;
        // project away rk, then reference it: invalid
        let plan = LogicalPlan::scan(r)
            .project(vec![])
            .select(Predicate::atom(Atom::cmp(
                cat.col("r", "rk"),
                CmpOp::Eq,
                1i64,
            )));
        assert!(validate(&plan, &cat).is_err());
    }
}
