//! Logical plan trees and batches.

use mqo_catalog::{Catalog, ColId, TableId};
use mqo_expr::{AggExpr, Predicate};

/// A logical plan tree. Joins are inner joins; `pred` on a join is the
/// conjunction of join conditions between the two sides.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base table scan.
    Scan(TableId),
    /// Selection.
    Select {
        /// Filter predicate.
        pred: Predicate,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Inner join.
    Join {
        /// Join predicate (typically a conjunction of column equalities).
        pred: Predicate,
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Grouping aggregation; an empty key list is a scalar aggregate.
    Aggregate {
        /// Group-by columns.
        keys: Vec<ColId>,
        /// Aggregate expressions (each bound to a derived output column).
        aggs: Vec<AggExpr>,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Projection to a subset of columns.
    Project {
        /// Output columns.
        cols: Vec<ColId>,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Base-table scan.
    #[must_use]
    pub fn scan(t: TableId) -> Self {
        LogicalPlan::Scan(t)
    }

    /// Wraps `self` in a selection.
    #[must_use]
    pub fn select(self, pred: Predicate) -> Self {
        LogicalPlan::Select {
            pred,
            input: Box::new(self),
        }
    }

    /// Joins `self` with `right` on `pred`.
    #[must_use]
    pub fn join(self, right: LogicalPlan, pred: Predicate) -> Self {
        LogicalPlan::Join {
            pred,
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Wraps `self` in an aggregation.
    #[must_use]
    pub fn aggregate(self, keys: Vec<ColId>, aggs: Vec<AggExpr>) -> Self {
        LogicalPlan::Aggregate {
            keys,
            aggs,
            input: Box::new(self),
        }
    }

    /// Wraps `self` in a projection.
    #[must_use]
    pub fn project(self, cols: Vec<ColId>) -> Self {
        LogicalPlan::Project {
            cols,
            input: Box::new(self),
        }
    }

    /// Output columns of this plan.
    #[must_use]
    pub fn output_cols(&self, catalog: &Catalog) -> Vec<ColId> {
        match self {
            LogicalPlan::Scan(t) => catalog.table_ref(*t).columns.clone(),
            LogicalPlan::Select { input, .. } => input.output_cols(catalog),
            LogicalPlan::Join { left, right, .. } => {
                let mut cols = left.output_cols(catalog);
                cols.extend(right.output_cols(catalog));
                cols
            }
            LogicalPlan::Aggregate { keys, aggs, .. } => {
                let mut cols = keys.clone();
                cols.extend(aggs.iter().map(|a| a.output));
                cols
            }
            LogicalPlan::Project { cols, .. } => cols.clone(),
        }
    }

    /// Base tables referenced by this plan, in scan order.
    #[must_use]
    pub fn tables(&self) -> Vec<TableId> {
        let mut out = Vec::new();
        self.walk(&mut |p| {
            if let LogicalPlan::Scan(t) = p {
                out.push(*t);
            }
        });
        out
    }

    /// Depth-first pre-order traversal.
    pub fn walk(&self, f: &mut impl FnMut(&LogicalPlan)) {
        f(self);
        match self {
            LogicalPlan::Scan(_) => {}
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Project { input, .. } => input.walk(f),
            LogicalPlan::Join { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
        }
    }

    /// Number of operator nodes in the tree.
    #[must_use]
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Multi-line, indented explain string with catalog names.
    #[must_use]
    pub fn explain(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        self.explain_into(catalog, 0, &mut out);
        out
    }

    fn explain_into(&self, catalog: &Catalog, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan(t) => {
                let _ = writeln!(out, "{pad}Scan {}", catalog.table_ref(*t).name);
            }
            LogicalPlan::Select { pred, input } => {
                let _ = writeln!(out, "{pad}Select {pred}");
                input.explain_into(catalog, depth + 1, out);
            }
            LogicalPlan::Join { pred, left, right } => {
                let _ = writeln!(out, "{pad}Join {pred}");
                left.explain_into(catalog, depth + 1, out);
                right.explain_into(catalog, depth + 1, out);
            }
            LogicalPlan::Aggregate { keys, aggs, input } => {
                let keys: Vec<String> = keys
                    .iter()
                    .map(|k| catalog.column(*k).name.clone())
                    .collect();
                let aggs: Vec<String> = aggs
                    .iter()
                    .map(|a| format!("{:?}->{}", a.func, catalog.column(a.output).name))
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}Aggregate [{}] {}",
                    keys.join(","),
                    aggs.join(",")
                );
                input.explain_into(catalog, depth + 1, out);
            }
            LogicalPlan::Project { cols, input } => {
                let cols: Vec<String> = cols
                    .iter()
                    .map(|c| catalog.column(*c).name.clone())
                    .collect();
                let _ = writeln!(out, "{pad}Project [{}]", cols.join(","));
                input.explain_into(catalog, depth + 1, out);
            }
        }
    }
}

/// One query of a batch.
#[derive(Debug, Clone)]
pub struct Query {
    /// The query's plan tree.
    pub plan: LogicalPlan,
    /// Invocation weight: 1 for plain queries; the estimated invocation
    /// count for nested/parameterized queries (paper §5). Costs and
    /// sharing benefits of this query's nodes scale by this factor.
    pub weight: f64,
    /// Human-readable name used in reports.
    pub label: String,
}

impl Query {
    /// A plain, weight-1 query.
    pub fn new(label: impl Into<String>, plan: LogicalPlan) -> Self {
        Self {
            plan,
            weight: 1.0,
            label: label.into(),
        }
    }

    /// A query invoked `weight` times (nested subquery or parameterized
    /// query template).
    pub fn invoked(label: impl Into<String>, plan: LogicalPlan, weight: f64) -> Self {
        Self {
            plan,
            weight: weight.max(1.0),
            label: label.into(),
        }
    }
}

/// The unit of multi-query optimization: queries optimized together under
/// one pseudo-root.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// The member queries.
    pub queries: Vec<Query>,
}

impl Batch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A batch of one plain query.
    #[must_use]
    pub fn single(label: &str, plan: LogicalPlan) -> Self {
        Self {
            queries: vec![Query::new(label, plan)],
        }
    }

    /// Builds a batch from queries.
    #[must_use]
    pub fn of(queries: Vec<Query>) -> Self {
        Self { queries }
    }

    /// Appends a query.
    pub fn push(&mut self, q: Query) -> &mut Self {
        self.queries.push(q);
        self
    }

    /// Number of queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the batch has no queries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The batch with query order reversed (Volcano-RU considers both
    /// orders, paper §3.3).
    #[must_use]
    pub fn reversed(&self) -> Batch {
        let mut queries = self.queries.clone();
        queries.reverse();
        Batch { queries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_catalog::{Catalog, ColStats, ColType};
    use mqo_expr::{AggFunc, Atom, CmpOp, ScalarExpr};

    fn setup() -> (Catalog, TableId, TableId) {
        let mut cat = Catalog::new();
        let r = cat
            .table("r")
            .rows(100.0)
            .int_key("rk")
            .int_uniform("rv", 0, 9)
            .build();
        let s = cat
            .table("s")
            .rows(200.0)
            .int_key("sk")
            .int_uniform("rfk", 0, 99)
            .build();
        (cat, r, s)
    }

    #[test]
    fn builder_shapes_tree() {
        let (cat, r, s) = setup();
        let rk = cat.col("r", "rk");
        let rfk = cat.col("s", "rfk");
        let plan = LogicalPlan::scan(r)
            .join(
                LogicalPlan::scan(s),
                Predicate::atom(Atom::eq_cols(rk, rfk)),
            )
            .select(Predicate::atom(Atom::cmp(
                cat.col("r", "rv"),
                CmpOp::Lt,
                5i64,
            )));
        assert_eq!(plan.node_count(), 4);
        assert_eq!(plan.tables(), vec![r, s]);
    }

    #[test]
    fn output_cols_flow() {
        let (mut cat, r, s) = setup();
        let rk = cat.col("r", "rk");
        let rfk = cat.col("s", "rfk");
        let total = cat.derived_column("total", ColType::Float, ColStats::opaque(50.0));
        let join = LogicalPlan::scan(r).join(
            LogicalPlan::scan(s),
            Predicate::atom(Atom::eq_cols(rk, rfk)),
        );
        assert_eq!(join.output_cols(&cat).len(), 4);
        let agg = join.aggregate(
            vec![rk],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(rfk), total)],
        );
        assert_eq!(agg.output_cols(&cat), vec![rk, total]);
        let proj = agg.project(vec![total]);
        assert_eq!(proj.output_cols(&cat), vec![total]);
    }

    #[test]
    fn batch_reversal_preserves_members() {
        let (_, r, s) = setup();
        let b = Batch::of(vec![
            Query::new("a", LogicalPlan::scan(r)),
            Query::new("b", LogicalPlan::scan(s)),
        ]);
        let rev = b.reversed();
        assert_eq!(rev.queries[0].label, "b");
        assert_eq!(rev.queries[1].label, "a");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn invoked_weight_clamped() {
        let (_, r, _) = setup();
        let q = Query::invoked("inner", LogicalPlan::scan(r), 0.25);
        assert_eq!(q.weight, 1.0);
        let q = Query::invoked("inner", LogicalPlan::scan(r), 4000.0);
        assert_eq!(q.weight, 4000.0);
    }

    #[test]
    fn explain_renders_names() {
        let (cat, r, s) = setup();
        let rk = cat.col("r", "rk");
        let rfk = cat.col("s", "rfk");
        let plan = LogicalPlan::scan(r).join(
            LogicalPlan::scan(s),
            Predicate::atom(Atom::eq_cols(rk, rfk)),
        );
        let text = plan.explain(&cat);
        assert!(text.contains("Scan r"));
        assert!(text.contains("Scan s"));
        assert!(text.contains("Join"));
    }
}
