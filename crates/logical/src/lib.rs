//! Logical algebra: plan trees and query batches.
//!
//! Queries enter the optimizer as [`LogicalPlan`] trees over the algebra
//! the paper works with — scan, select, join, aggregate, project. A
//! [`Batch`] groups the queries optimized together under the DAG's
//! pseudo-root; per-query *weights* carry the nested/parameterized query
//! extension of §5 (a weight-`n` query is costed as `n` invocations, and
//! subexpressions that depend on correlation variables are marked by
//! `Param` atoms in their predicates).

mod plan;
mod validate;

pub use plan::{Batch, LogicalPlan, Query};
pub use validate::{validate, ValidationError};
