//! Canonical cross-batch fingerprints for equivalence nodes.
//!
//! A long-lived serving session (`mqo-session`) keeps materialized
//! results alive *across* batches, but [`GroupId`]s are arena indices —
//! the same logical subexpression gets different ids in different
//! batches, and even within one batch its id depends on insertion order.
//! The fingerprint is the stable name: a content hash of the group's
//! *canonical expression*, computed bottom-up so two batches that expand
//! the same query subtree (over the same [`Catalog`](mqo_catalog)
//! instance — `TableId`/`ColId` stability is what makes the hash
//! portable) agree on the fingerprint of every shared group.
//!
//! Canonicalization rules:
//!
//! * Per group, the fingerprint is the **minimum** over the expression
//!   hashes of its alive operations — invariant under the op insertion
//!   order and under unification merging more alternatives in (the same
//!   rule closure yields the same op set, hence the same minimum).
//! * **Join inputs hash as an unordered pair** (child fingerprints
//!   sorted), so the commutativity rule's `A⋈B`/`B⋈A` twins — which may
//!   or may not both exist depending on which queries seeded the group —
//!   collapse to one hash. Stored tables are column-id addressed, so a
//!   cached `A⋈B` temp serves a `B⋈A` consumer unchanged.
//! * **Subsumption-derived operations are excluded**: they encode what
//!   *other* predicates happened to share a batch (σ₁ computed from a
//!   materialized σ₁∨σ₂), which is batch context, not identity. A group
//!   reachable only through subsumption ops falls back to including
//!   them — it can never match across batches anyway.
//! * The group's sorted output-column set is mixed in as a final guard:
//!   groups with different schemas can never collide.
//!
//! A fingerprint mismatch for logically identical results is a missed
//! cache hit (safe); a collision between different results would be a
//! wrong answer, so the hash is 64-bit and every component (operator
//! kind, predicate structure, table/column ids) feeds it.

use crate::memo::{Dag, GroupId, OpKind};
use mqo_util::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};

/// A stable content hash naming a logical result across batches.
pub type Fingerprint = u64;

/// SplitMix64 finalizer — folds `v` into `h` so close inputs land far
/// apart. The one mixing primitive of the fingerprint scheme; layers
/// that extend a group fingerprint (e.g. `mqo-physical` mixing in the
/// physical property) must use this same function so the scheme stays
/// single-sourced.
#[inline]
#[must_use]
pub fn mix(mut h: u64, v: u64) -> u64 {
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15).wrapping_add(v);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Why fingerprinting a DAG failed. Both cases mean the DAG violates a
/// structural invariant (children before parents in `topo_order`, every
/// reachable group implemented) — they can only arise from memo
/// corruption, which `mqo-verify` wants reported as a diagnostic rather
/// than a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FingerprintError {
    /// An op's input group had no fingerprint yet — `topo_order` does
    /// not list children before parents (stale or cyclic).
    UnfingerprintedChild {
        /// The input group whose fingerprint was missing.
        group: GroupId,
    },
    /// A group in `topo_order` has no alive operation to hash.
    EmptyGroup {
        /// The unimplemented group.
        group: GroupId,
    },
}

impl std::fmt::Display for FingerprintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FingerprintError::UnfingerprintedChild { group } => write!(
                f,
                "input group g{group} was not fingerprinted before its consumer \
                 (topo order does not list children first)"
            ),
            FingerprintError::EmptyGroup { group } => {
                write!(f, "group g{group} has no alive operation to fingerprint")
            }
        }
    }
}

impl std::error::Error for FingerprintError {}

/// Hashes one operation: operator kind (predicates, keys, table ids)
/// plus child fingerprints, join children order-insensitive.
fn op_fingerprint(
    dag: &Dag,
    op: crate::memo::OpId,
    fps: &FxHashMap<GroupId, Fingerprint>,
) -> Result<u64, FingerprintError> {
    let kind = &dag.op(op).kind;
    let mut hasher = FxHasher::default();
    kind.hash(&mut hasher);
    let mut h = mix(0xA11_D06, hasher.finish());
    let mut children = Vec::with_capacity(dag.op_inputs(op).len());
    for g in dag.op_inputs(op) {
        match fps.get(&g) {
            Some(&fp) => children.push(fp),
            None => return Err(FingerprintError::UnfingerprintedChild { group: g }),
        }
    }
    if matches!(kind, OpKind::Join(_)) {
        children.sort_unstable();
    }
    for c in children {
        h = mix(h, c);
    }
    Ok(h)
}

/// Computes the fingerprint of every reachable group, children before
/// parents. Deterministic for a given DAG content — independent of
/// thread counts, hash-map iteration, and id numbering.
///
/// # Panics
///
/// Panics if the DAG is structurally broken (stale topological order or
/// an unimplemented group). Use [`try_group_fingerprints`] to get the
/// violation as a value instead — that is what `mqo-verify` does, so a
/// corrupted memo is diagnosed rather than aborted on.
#[must_use]
pub fn group_fingerprints(dag: &Dag) -> FxHashMap<GroupId, Fingerprint> {
    match try_group_fingerprints(dag) {
        Ok(fps) => fps,
        Err(e) => panic!("fingerprinting a broken DAG: {e}"),
    }
}

/// Fallible twin of [`group_fingerprints`]: reports memo corruption as a
/// [`FingerprintError`] instead of panicking.
pub fn try_group_fingerprints(
    dag: &Dag,
) -> Result<FxHashMap<GroupId, Fingerprint>, FingerprintError> {
    let mut fps: FxHashMap<GroupId, Fingerprint> = FxHashMap::default();
    for &g in dag.topo_order() {
        let mut canonical: Option<u64> = None;
        let mut any: Option<u64> = None;
        for o in dag.group_ops(g) {
            let h = op_fingerprint(dag, o, &fps)?;
            if !dag.op(o).from_subsumption {
                canonical = Some(canonical.map_or(h, |c: u64| c.min(h)));
            }
            any = Some(any.map_or(h, |c: u64| c.min(h)));
        }
        // Groups reachable only via subsumption derivations still need a
        // (batch-local) name; include the derived ops for those.
        let canonical = match canonical.or(any) {
            Some(c) => c,
            None => return Err(FingerprintError::EmptyGroup { group: g }),
        };
        let grp = dag.group(g);
        let mut fp = mix(canonical, grp.cols.len() as u64);
        for &c in &grp.cols {
            fp = mix(fp, u64::from(c.0));
        }
        fps.insert(g, fp);
    }
    Ok(fps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagConfig;
    use mqo_catalog::Catalog;
    use mqo_expr::{Atom, CmpOp, Predicate};
    use mqo_logical::{Batch, LogicalPlan, Query};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["fa", "fb", "fc"] {
            let _ = cat
                .table(name)
                .rows(10_000.0)
                .int_key(&format!("{name}k"))
                .int_uniform(&format!("{name}v"), 0, 999)
                .build();
        }
        cat
    }

    fn join_ab(cat: &Catalog) -> LogicalPlan {
        let p = Predicate::atom(Atom::eq_cols(cat.col("fa", "fav"), cat.col("fb", "fbk")));
        LogicalPlan::scan(cat.table_by_name("fa").unwrap().id)
            .join(LogicalPlan::scan(cat.table_by_name("fb").unwrap().id), p)
    }

    fn fp_of_query_root(cat: &Catalog, batch: &Batch, q: usize) -> Fingerprint {
        let dag = Dag::expand(batch, cat, DagConfig::default());
        let fps = group_fingerprints(&dag);
        let root_inputs = dag.op_inputs(dag.root_op());
        fps[&root_inputs[q]]
    }

    /// The same subexpression must fingerprint identically when expanded
    /// inside different batches (different group numbering, different
    /// companion queries).
    #[test]
    fn stable_across_batch_contexts() {
        let cat = catalog();
        let ab = join_ab(&cat);
        let solo = Batch::single("q", ab.clone());
        let other = {
            let p = Predicate::atom(Atom::eq_cols(cat.col("fb", "fbv"), cat.col("fc", "fck")));
            LogicalPlan::scan(cat.table_by_name("fb").unwrap().id)
                .join(LogicalPlan::scan(cat.table_by_name("fc").unwrap().id), p)
        };
        let mixed = Batch::of(vec![Query::new("other", other), Query::new("q", ab)]);
        assert_eq!(
            fp_of_query_root(&cat, &solo, 0),
            fp_of_query_root(&cat, &mixed, 1),
            "same subexpression, different batch → same fingerprint"
        );
    }

    /// `A⋈B` and `B⋈A` are the same logical result.
    #[test]
    fn join_commutation_is_canonicalized() {
        let cat = catalog();
        let p = Predicate::atom(Atom::eq_cols(cat.col("fa", "fav"), cat.col("fb", "fbk")));
        let (a, b) = (
            cat.table_by_name("fa").unwrap().id,
            cat.table_by_name("fb").unwrap().id,
        );
        let ab = LogicalPlan::scan(a).join(LogicalPlan::scan(b), p.clone());
        let ba = LogicalPlan::scan(b).join(LogicalPlan::scan(a), p);
        assert_eq!(
            fp_of_query_root(&cat, &Batch::single("x", ab), 0),
            fp_of_query_root(&cat, &Batch::single("x", ba), 0)
        );
    }

    /// Different predicates / different constants must not collide.
    #[test]
    fn different_expressions_differ() {
        let cat = catalog();
        let t = cat.table_by_name("fa").unwrap().id;
        let sel = |k: i64| {
            LogicalPlan::scan(t).select(Predicate::atom(Atom::cmp(
                cat.col("fa", "fav"),
                CmpOp::Lt,
                k,
            )))
        };
        let f1 = fp_of_query_root(&cat, &Batch::single("x", sel(10)), 0);
        let f2 = fp_of_query_root(&cat, &Batch::single("x", sel(11)), 0);
        assert_ne!(f1, f2, "selection constants must separate fingerprints");
        let scan_fp = fp_of_query_root(&cat, &Batch::single("x", LogicalPlan::scan(t)), 0);
        assert_ne!(f1, scan_fp, "σ(A) must not collide with A");
    }

    /// Re-expanding the identical batch yields identical fingerprints for
    /// every group (the cross-batch cache key contract).
    #[test]
    fn deterministic_across_expansions() {
        let cat = catalog();
        let batch = Batch::of(vec![
            Query::new("q1", join_ab(&cat)),
            Query::new("q2", join_ab(&cat)),
        ]);
        let d1 = Dag::expand(&batch, &cat, DagConfig::default());
        let d2 = Dag::expand(&batch, &cat, DagConfig::default());
        let (f1, f2) = (group_fingerprints(&d1), group_fingerprints(&d2));
        let mut v1: Vec<Fingerprint> = f1.values().copied().collect();
        let mut v2: Vec<Fingerprint> = f2.values().copied().collect();
        v1.sort_unstable();
        v2.sort_unstable();
        assert_eq!(v1, v2);
    }
}
