//! Subsumption derivations (paper §2.1).
//!
//! After expansion, sibling selections over the same input are linked:
//! a stronger range selection gains a derivation from the weaker one
//! (`σ_{A<5}(E) ≡ σ_{A<5}(σ_{A<10}(E))`), equality selections gain a shared
//! disjunction node (`σ_{A=5∨A=10}(E)`), and sibling aggregations over the
//! same input gain derivations from the union group-by. Operations added
//! here are flagged `from_subsumption`: the basic Volcano search would
//! never pick them (they cost strictly more locally), so the MQO
//! algorithms give them special treatment (Volcano-SH's pre-pass, greedy's
//! benefit computation).

use crate::build::compute_props;
use crate::memo::{Dag, GroupId, OpId, OpKind};
use mqo_catalog::ColId;
use mqo_cost::Estimator;
use mqo_expr::{AggExpr, AggFunc, Atom, CmpOp, Predicate, ScalarExpr, Value};
use mqo_util::FxHashMap;

/// Adds all subsumption derivations to the DAG.
pub(crate) fn add_derivations(dag: &mut Dag, est: &Estimator<'_>) {
    add_select_derivations(dag, est);
    add_aggregate_derivations(dag, est);
}

/// Sibling selections over the same `(input group, column)` site:
/// `(op, comparison, constant, owning group)` per entry.
type SelectSites = FxHashMap<(GroupId, ColId), Vec<(OpId, CmpOp, Value, GroupId)>>;

fn add_select_derivations(dag: &mut Dag, est: &Estimator<'_>) {
    let mut by_site: SelectSites = FxHashMap::default();
    for idx in 0..dag.ops_allocated() {
        let oid = OpId::from_index(idx);
        let op = dag.op(oid);
        if !op.alive || op.from_subsumption {
            continue;
        }
        let OpKind::Select(pred) = &op.kind else {
            continue;
        };
        let Some((col, cmp, val)) = pred.as_single_cmp() else {
            continue;
        };
        let val = val.clone();
        let input = dag.op_inputs(oid)[0];
        let group = dag.op_group(oid);
        by_site
            .entry((input, col))
            .or_default()
            .push((oid, cmp, val, group));
    }

    for ((input, col), entries) in mqo_util::into_sorted_entries(by_site) {
        if entries.len() < 2 {
            continue;
        }
        // --- Range subsumption: derive the stronger from the weaker.
        for (_, cmp_i, val_i, group_i) in &entries {
            let pred_i = Predicate::atom(Atom::cmp(col, *cmp_i, val_i.clone()));
            for (_, cmp_j, val_j, group_j) in &entries {
                let pred_j = Predicate::atom(Atom::cmp(col, *cmp_j, val_j.clone()));
                let gi = dag.find(*group_i);
                let gj = dag.find(*group_j);
                if gi == gj {
                    continue;
                }
                // i strictly stronger than j: σ_i(E) = σ_i(σ_j(E))
                if pred_i.implies(&pred_j) && !pred_j.implies(&pred_i) {
                    dag.insert_op(
                        OpKind::Select(pred_i.clone()),
                        vec![gj],
                        Some(gi),
                        true,
                        false,
                    );
                }
            }
        }
        // --- Equality disjunction: one shared node for all `col = v_k`.
        let eqs: Vec<(Value, GroupId)> = entries
            .iter()
            .filter(|(_, cmp, _, _)| *cmp == CmpOp::Eq)
            .map(|(_, _, v, g)| (v.clone(), *g))
            .collect();
        let distinct_vals = {
            let mut vs: Vec<&Value> = eqs.iter().map(|(v, _)| v).collect();
            vs.sort_by(|a, b| a.sort_cmp(b));
            vs.dedup();
            vs.len()
        };
        if eqs.len() >= 2 && distinct_vals >= 2 {
            let disj = eqs
                .iter()
                .map(|(v, _)| Predicate::atom(Atom::cmp(col, CmpOp::Eq, v.clone())))
                .reduce(|a, b| a.or(&b))
                .expect("non-empty");
            let kind = OpKind::Select(disj);
            let props = compute_props(dag, est, &kind, &[input]);
            let (g_disj, _, _) = dag.insert_expr(kind, vec![input], || props, true, false);
            for (v, g_eq) in eqs {
                let g_eq = dag.find(g_eq);
                if g_eq == dag.find(g_disj) {
                    continue;
                }
                let pred = Predicate::atom(Atom::cmp(col, CmpOp::Eq, v));
                dag.insert_op(OpKind::Select(pred), vec![g_disj], Some(g_eq), true, false);
            }
        }
    }
}

/// Reaggregation function when computing an aggregate from a finer
/// grouping: `sum` of partial sums/counts, `min` of mins, `max` of maxes.
fn reagg(a: &AggExpr) -> AggExpr {
    let func = match a.func {
        AggFunc::Sum => AggFunc::Sum,
        AggFunc::Min => AggFunc::Min,
        AggFunc::Max => AggFunc::Max,
        AggFunc::Count => AggFunc::Sum,
    };
    AggExpr::new(func, ScalarExpr::col(a.output), a.output)
}

/// Sibling aggregations over the same `(input group, agg list)` site:
/// `(group-by keys, owning group)` per entry.
type AggSites = FxHashMap<(GroupId, Vec<AggExpr>), Vec<(Vec<ColId>, GroupId)>>;

fn add_aggregate_derivations(dag: &mut Dag, est: &Estimator<'_>) {
    let mut by_site: AggSites = FxHashMap::default();
    for idx in 0..dag.ops_allocated() {
        let oid = OpId::from_index(idx);
        let op = dag.op(oid);
        if !op.alive || op.from_subsumption {
            continue;
        }
        let OpKind::Aggregate { keys, aggs } = &op.kind else {
            continue;
        };
        let (keys, aggs) = (keys.clone(), aggs.clone());
        let input = dag.op_inputs(oid)[0];
        let group = dag.op_group(oid);
        by_site
            .entry((input, aggs))
            .or_default()
            .push((keys, group));
    }
    // `Vec<AggExpr>` carries no `Ord` (scalar expressions embed float
    // constants), so `into_sorted_entries` does not apply; order the
    // sites by input group with the Debug rendering of the aggregate
    // list as tiebreak — both are functions of the contents only.
    // mqo-analyze: allow(hash-iteration): drained into `sites` and sorted by (group, Debug render) below — content-only order
    let mut sites: Vec<_> = by_site.into_iter().collect();
    sites.sort_by(|a, b| {
        let ((ga, aa), _) = a;
        let ((gb, ab), _) = b;
        ga.cmp(gb)
            .then_with(|| format!("{aa:?}").cmp(&format!("{ab:?}")))
    });
    for ((input, aggs), mut entries) in sites {
        entries.sort();
        entries.dedup();
        if entries.len() < 2 {
            continue;
        }
        let mut union_keys: Vec<ColId> = entries.iter().flat_map(|(k, _)| k.clone()).collect();
        union_keys.sort_unstable();
        union_keys.dedup();
        // The union node groups by K1 ∪ K2 ∪ …; every sibling derives from
        // it by re-aggregating.
        let union_kind = OpKind::Aggregate {
            keys: union_keys.clone(),
            aggs: aggs.clone(),
        };
        let props = compute_props(dag, est, &union_kind, &[input]);
        let (g_union, _, _) = dag.insert_expr(union_kind, vec![input], || props, true, false);
        let re_aggs: Vec<AggExpr> = aggs.iter().map(reagg).collect();
        for (keys, g) in entries {
            if keys == union_keys {
                continue;
            }
            let g = dag.find(g);
            if g == dag.find(g_union) {
                continue;
            }
            let kind = OpKind::Aggregate {
                keys,
                aggs: re_aggs.clone(),
            };
            dag.insert_op(kind, vec![g_union], Some(g), true, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagConfig;
    use mqo_catalog::{Catalog, ColStats, ColType};
    use mqo_logical::{Batch, LogicalPlan, Query};

    fn setup() -> Catalog {
        let mut cat = Catalog::new();
        let _ = cat
            .table("e")
            .rows(10_000.0)
            .int_key("k")
            .int_uniform("a", 0, 99)
            .int_uniform("dno", 0, 9)
            .int_uniform("age", 0, 59)
            .int_uniform("sal", 0, 999)
            .build();
        cat
    }

    fn count_subsumption_ops(dag: &Dag) -> usize {
        (0..dag.ops_allocated())
            .map(OpId::from_index)
            .filter(|&o| dag.op(o).alive && dag.op(o).from_subsumption)
            .count()
    }

    #[test]
    fn range_selects_gain_derivation_from_weaker() {
        let cat = setup();
        let e = cat.table_by_name("e").unwrap().id;
        let a = cat.col("e", "a");
        let q1 = LogicalPlan::scan(e).select(Predicate::atom(Atom::cmp(a, CmpOp::Lt, 5i64)));
        let q2 = LogicalPlan::scan(e).select(Predicate::atom(Atom::cmp(a, CmpOp::Lt, 10i64)));
        let dag = Dag::expand(
            &Batch::of(vec![Query::new("q1", q1), Query::new("q2", q2)]),
            &cat,
            DagConfig::default(),
        );
        assert_eq!(count_subsumption_ops(&dag), 1, "\n{}", dag.dump());
        // the σ_{a<5} group now has 2 alternatives: from scan, from σ_{a<10}
        let strong = dag
            .topo_order()
            .iter()
            .copied()
            .find(|&g| dag.group_ops(g).count() == 2)
            .expect("strong select group has two ops");
        let has_derivation = dag.group_ops(strong).any(|o| dag.op(o).from_subsumption);
        assert!(has_derivation);
    }

    #[test]
    fn equality_selects_gain_disjunction_node() {
        let cat = setup();
        let e = cat.table_by_name("e").unwrap().id;
        let a = cat.col("e", "a");
        let q1 = LogicalPlan::scan(e).select(Predicate::atom(Atom::cmp(a, CmpOp::Eq, 5i64)));
        let q2 = LogicalPlan::scan(e).select(Predicate::atom(Atom::cmp(a, CmpOp::Eq, 10i64)));
        let before_groups = 4; // scan, σ=5, σ=10, root
        let dag = Dag::expand(
            &Batch::of(vec![Query::new("q1", q1), Query::new("q2", q2)]),
            &cat,
            DagConfig::default(),
        );
        // one extra group: the disjunction node
        assert_eq!(dag.num_groups(), before_groups + 1, "\n{}", dag.dump());
        // two derivations hang off it
        assert_eq!(count_subsumption_ops(&dag), 3); // disj node op + 2 derivations
    }

    #[test]
    fn aggregates_gain_union_groupby_derivations() {
        let mut cat = setup();
        let e = cat.table_by_name("e").unwrap().id;
        let (dno, age, sal) = (
            cat.col("e", "dno"),
            cat.col("e", "age"),
            cat.col("e", "sal"),
        );
        let s1 = cat.derived_column("s1", ColType::Float, ColStats::opaque(1000.0));
        let q1 = LogicalPlan::scan(e).aggregate(
            vec![dno],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(sal), s1)],
        );
        let q2 = LogicalPlan::scan(e).aggregate(
            vec![age],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(sal), s1)],
        );
        let dag = Dag::expand(
            &Batch::of(vec![Query::new("q1", q1), Query::new("q2", q2)]),
            &cat,
            DagConfig::default(),
        );
        // groups: scan, G_dno, G_age, G_{dno,age}, root = 5
        assert_eq!(dag.num_groups(), 5, "\n{}", dag.dump());
        // union node op + 2 reaggregation derivations
        assert_eq!(count_subsumption_ops(&dag), 3);
    }

    #[test]
    fn no_derivations_without_siblings() {
        let cat = setup();
        let e = cat.table_by_name("e").unwrap().id;
        let a = cat.col("e", "a");
        let q1 = LogicalPlan::scan(e).select(Predicate::atom(Atom::cmp(a, CmpOp::Lt, 5i64)));
        let dag = Dag::expand(&Batch::single("q1", q1), &cat, DagConfig::default());
        assert_eq!(count_subsumption_ops(&dag), 0);
    }

    #[test]
    fn disabled_subsumption_adds_nothing() {
        let cat = setup();
        let e = cat.table_by_name("e").unwrap().id;
        let a = cat.col("e", "a");
        let q1 = LogicalPlan::scan(e).select(Predicate::atom(Atom::cmp(a, CmpOp::Lt, 5i64)));
        let q2 = LogicalPlan::scan(e).select(Predicate::atom(Atom::cmp(a, CmpOp::Lt, 10i64)));
        let dag = Dag::expand(
            &Batch::of(vec![Query::new("q1", q1), Query::new("q2", q2)]),
            &cat,
            DagConfig {
                enable_subsumption: false,
                ..DagConfig::default()
            },
        );
        assert_eq!(count_subsumption_ops(&dag), 0);
    }
}
