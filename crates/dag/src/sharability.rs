//! Sharability: the degree-of-sharing computation of paper §4.1.
//!
//! The *degree of sharing* of an equivalence node `z` is the maximum
//! number of times `z` occurs in the plan *tree* of any plan represented
//! by the DAG. It is computed one `z` at a time over `z`'s ancestors:
//! an operation node sums its children's degrees (it evaluates each input
//! once), an equivalence node takes the maximum over its alternatives, and
//! the pseudo-root weighs each query by its invocation count. A node is
//! **sharable** iff its degree exceeds one; greedy only ever considers
//! sharable nodes as materialization candidates, which the paper's §6.3
//! shows is a significant optimization.

use crate::memo::{Dag, GroupId, OpKind};
use mqo_util::FxHashMap;

/// Computes the degree of sharing of every reachable group.
///
/// # Panics
///
/// The DAG must be rooted (`Dag::expand` output); panics otherwise.
#[must_use]
pub fn degree_of_sharing(dag: &Dag) -> FxHashMap<GroupId, f64> {
    let order = dag.topo_order();
    let mut result: FxHashMap<GroupId, f64> = FxHashMap::default();
    let root = dag.root();
    for &z in order {
        if z == root {
            result.insert(z, 1.0);
            continue;
        }
        result.insert(z, degree_of(dag, z));
    }
    result
}

/// Degree of sharing of a single group (see module docs).
///
/// # Panics
///
/// The DAG must be rooted (`Dag::expand` output); panics otherwise.
pub fn degree_of(dag: &Dag, z: GroupId) -> f64 {
    let root = dag.root();
    // Collect z's ancestor groups (via parent ops), then evaluate in
    // topological order. Space stays O(ancestors) — the paper's
    // "one z at a time" trick.
    let mut ancestors: Vec<GroupId> = Vec::new();
    let mut seen: FxHashMap<GroupId, ()> = FxHashMap::default();
    let mut stack = vec![z];
    seen.insert(z, ());
    while let Some(g) = stack.pop() {
        ancestors.push(g);
        for op in dag.parents_of(g) {
            let pg = dag.op_group(op);
            if seen.insert(pg, ()).is_none() {
                stack.push(pg);
            }
        }
    }
    ancestors.sort_by_key(|&g| dag.group(g).topo);
    let mut val: FxHashMap<GroupId, f64> = FxHashMap::default();
    val.insert(z, 1.0);
    for &g in &ancestors {
        if g == z {
            continue;
        }
        let mut best = 0.0f64;
        for op in dag.group_ops(g) {
            let v = match &dag.op(op).kind {
                OpKind::Root => {
                    let weights = dag.root_weights();
                    dag.op_inputs(op)
                        .iter()
                        .zip(weights)
                        .map(|(i, w)| w * val.get(i).copied().unwrap_or(0.0))
                        .sum::<f64>()
                }
                _ => dag
                    .op_inputs(op)
                    .iter()
                    .map(|i| val.get(i).copied().unwrap_or(0.0))
                    .sum::<f64>(),
            };
            best = best.max(v);
        }
        val.insert(g, best);
    }
    val.get(&root).copied().unwrap_or(0.0)
}

/// Groups eligible for materialization: degree of sharing > 1, not the
/// root, not parameter-dependent (paper §5: correlated results cannot be
/// shared across invocations), and not bare base-table scans with nothing
/// applied (those *are* reusable, but reuse equals a rescan; they are
/// still returned because a *sorted* materialization of a base table can
/// pay off — the temp-index extension).
///
/// # Panics
///
/// The DAG must be rooted (`Dag::expand` output); panics otherwise.
#[must_use]
pub fn sharable_groups(dag: &Dag) -> Vec<(GroupId, f64)> {
    let degrees = degree_of_sharing(dag);
    let root = dag.root();
    let mut out: Vec<(GroupId, f64)> = degrees
        .into_iter()
        .filter(|&(g, d)| g != root && d > 1.0 + 1e-9 && !dag.group(g).has_param)
        .collect();
    out.sort_by_key(|&(g, _)| dag.group(g).topo);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagConfig;
    use mqo_catalog::Catalog;
    use mqo_expr::{Atom, Predicate};
    use mqo_logical::{Batch, LogicalPlan, Query};

    fn chain_catalog(n: usize) -> Catalog {
        let mut cat = Catalog::new();
        for i in 0..n {
            let _ = cat
                .table(&format!("t{i}"))
                .rows(1000.0)
                .int_key("p")
                .int_uniform("sp", 0, 999)
                .build();
        }
        cat
    }

    fn chain_query(cat: &Catalog, lo: usize, hi: usize) -> LogicalPlan {
        let mut plan = LogicalPlan::scan(cat.table_by_name(&format!("t{lo}")).unwrap().id);
        for i in lo + 1..=hi {
            let pred = Predicate::atom(Atom::eq_cols(
                cat.col(&format!("t{}", i - 1), "sp"),
                cat.col(&format!("t{i}"), "p"),
            ));
            plan = plan.join(
                LogicalPlan::scan(cat.table_by_name(&format!("t{i}")).unwrap().id),
                pred,
            );
        }
        plan
    }

    #[test]
    fn identical_queries_make_everything_sharable() {
        let cat = chain_catalog(3);
        let q = chain_query(&cat, 0, 2);
        let batch = Batch::of(vec![Query::new("a", q.clone()), Query::new("b", q)]);
        let dag = Dag::expand(&batch, &cat, DagConfig::default());
        let sharable = sharable_groups(&dag);
        // every non-root group is used by both queries → degree 2
        assert_eq!(sharable.len(), dag.num_groups() - 1, "\n{}", dag.dump());
        assert!(sharable.iter().all(|&(_, d)| (d - 2.0).abs() < 1e-9));
    }

    #[test]
    fn single_query_chain_shares_nothing() {
        let cat = chain_catalog(3);
        let q = chain_query(&cat, 0, 2);
        let dag = Dag::expand(&Batch::single("q", q), &cat, DagConfig::default());
        assert!(sharable_groups(&dag).is_empty(), "\n{}", dag.dump());
    }

    #[test]
    fn example_1_1_r_join_s_is_sharable_but_r_join_t_is_not() {
        // Q1 = (R ⋈ S) ⋈ P, Q2 = (R ⋈ T) ⋈ S — the paper's Example 1.1.
        // R⋈S is sharable (both queries can compute it); R⋈P is not.
        let mut cat = Catalog::new();
        for name in ["r", "s", "t", "p"] {
            let _ = cat
                .table(name)
                .rows(1000.0)
                .int_key(&format!("{name}k"))
                .int_uniform(&format!("{name}v"), 0, 999)
                .build();
        }
        let (r, s, t, p) = (
            cat.table_by_name("r").unwrap().id,
            cat.table_by_name("s").unwrap().id,
            cat.table_by_name("t").unwrap().id,
            cat.table_by_name("p").unwrap().id,
        );
        let rs = Predicate::atom(Atom::eq_cols(cat.col("r", "rv"), cat.col("s", "sk")));
        let rt = Predicate::atom(Atom::eq_cols(cat.col("r", "rk"), cat.col("t", "tk")));
        let sp = Predicate::atom(Atom::eq_cols(cat.col("s", "sv"), cat.col("p", "pk")));
        // Q1: (R ⋈ S) ⋈ P  — join graph R-S, S-P
        let q1 = LogicalPlan::scan(r)
            .join(LogicalPlan::scan(s), rs.clone())
            .join(LogicalPlan::scan(p), sp);
        // Q2: (R ⋈ T) ⋈ S — join graph R-T, R-S
        let q2 = LogicalPlan::scan(r)
            .join(LogicalPlan::scan(t), rt)
            .join(LogicalPlan::scan(s), rs);
        let dag = Dag::expand(
            &Batch::of(vec![Query::new("q1", q1), Query::new("q2", q2)]),
            &cat,
            DagConfig::default(),
        );
        let degrees = degree_of_sharing(&dag);
        // find the {r,s} group and the {r,t} group
        let find_rel = |rels: &[usize]| {
            dag.topo_order()
                .iter()
                .copied()
                .find(|&g| {
                    let rs = &dag.group(g).relset;
                    rs.len() == rels.len() && rels.iter().all(|&r| rs.contains(r))
                })
                .unwrap()
        };
        let g_rs = find_rel(&[r.index(), s.index()]);
        let g_rt = find_rel(&[r.index(), t.index()]);
        assert!(degrees[&g_rs] > 1.0, "R⋈S sharable: {}", degrees[&g_rs]);
        assert!(
            degrees[&g_rt] <= 1.0,
            "R⋈T not sharable: {}",
            degrees[&g_rt]
        );
        // base relation R is used by both queries
        let g_r = find_rel(&[r.index()]);
        assert!(degrees[&g_r] >= 2.0);
    }

    #[test]
    fn invocation_weights_multiply_degree() {
        let cat = chain_catalog(2);
        let q = chain_query(&cat, 0, 1);
        let batch = Batch::of(vec![Query::invoked("inner", q, 50.0)]);
        let dag = Dag::expand(&batch, &cat, DagConfig::default());
        let degrees = degree_of_sharing(&dag);
        let join_group = dag.op_inputs(dag.root_op())[0];
        assert!((degrees[&join_group] - 50.0).abs() < 1e-9);
        // weight-50 single query → the join is sharable across invocations
        assert!(sharable_groups(&dag)
            .iter()
            .any(|&(g, _)| g == dag.find(join_group)));
    }

    #[test]
    fn nested_shared_nodes_multiply_through_levels() {
        // Two queries each using the {t0,t1} chain twice is impossible in
        // our algebra without self-joins; instead verify multiplication
        // via weights: weight 3 and weight 2 queries sharing a subchain
        // give degree 5.
        let cat = chain_catalog(3);
        let q1 = chain_query(&cat, 0, 1);
        let q2 = chain_query(&cat, 0, 2);
        let batch = Batch::of(vec![
            Query::invoked("a", q1, 3.0),
            Query::invoked("b", q2, 2.0),
        ]);
        let dag = Dag::expand(&batch, &cat, DagConfig::default());
        let degrees = degree_of_sharing(&dag);
        let g01 = dag
            .topo_order()
            .iter()
            .copied()
            .find(|&g| dag.group(g).relset.len() == 2 && dag.group(g).relset.contains(0))
            .unwrap();
        assert!((degrees[&g01] - 5.0).abs() < 1e-9, "{}", degrees[&g01]);
    }
}
