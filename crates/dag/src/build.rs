//! Building the initial DAG from logical plan trees and expanding it.

use crate::memo::{Dag, GroupId, GroupProps, OpKind};
use crate::{rules, subsumption, DagConfig};
use mqo_catalog::Catalog;
use mqo_cost::Estimator;
use mqo_logical::{Batch, LogicalPlan};
use mqo_util::BitSet;

impl Dag {
    /// Builds the **expanded DAG** for a batch: inserts every query tree,
    /// installs the pseudo-root, runs the transformation rules to a fix
    /// point, adds subsumption derivations, and assigns topological
    /// numbers.
    #[must_use]
    pub fn expand(batch: &Batch, catalog: &Catalog, config: DagConfig) -> Dag {
        let mut dag = Dag::empty(config);
        let est = Estimator::new(catalog);
        let mut roots = Vec::with_capacity(batch.len());
        let mut weights = Vec::with_capacity(batch.len());
        for q in &batch.queries {
            roots.push(insert_plan(&mut dag, &est, &q.plan));
            weights.push(q.weight);
        }
        dag.set_root(roots, weights);
        rules::apply_all(&mut dag, &est);
        if config.enable_subsumption {
            subsumption::add_derivations(&mut dag, &est);
        }
        dag.renumber();
        dag
    }

    /// Builds the *initial* (unexpanded) DAG — used by tests comparing
    /// pre/post expansion shapes.
    #[must_use]
    pub fn initial(batch: &Batch, catalog: &Catalog, config: DagConfig) -> Dag {
        let mut dag = Dag::empty(config);
        let est = Estimator::new(catalog);
        let mut roots = Vec::with_capacity(batch.len());
        let mut weights = Vec::with_capacity(batch.len());
        for q in &batch.queries {
            roots.push(insert_plan(&mut dag, &est, &q.plan));
            weights.push(q.weight);
        }
        dag.set_root(roots, weights);
        dag.renumber();
        dag
    }
}

/// Computes the logical properties of `kind(inputs)`. Shared by the
/// builder, the transformation rules and the subsumption pass so every
/// group gets a consistent estimate regardless of which derivation created
/// it first.
pub(crate) fn compute_props(
    dag: &Dag,
    est: &Estimator<'_>,
    kind: &OpKind,
    inputs: &[GroupId],
) -> GroupProps {
    let in_groups: Vec<&crate::memo::Group> = inputs.iter().map(|&g| dag.group(g)).collect();
    let in_param = in_groups.iter().any(|g| g.has_param);
    let relset = in_groups
        .iter()
        .fold(BitSet::new(), |acc, g| acc.union(&g.relset));
    match kind {
        OpKind::Scan(t) => {
            let cols = est.catalog().table_ref(*t).columns.clone();
            let width = est.row_width(&cols);
            GroupProps {
                rows: est.scan_rows(*t),
                cols,
                width,
                has_param: false,
                relset: BitSet::singleton(t.index()),
            }
        }
        OpKind::Select(p) => {
            let input = in_groups[0];
            GroupProps {
                rows: est.select_rows(input.rows, p),
                cols: input.cols.clone(),
                width: input.width,
                has_param: in_param || p.has_param(),
                relset,
            }
        }
        OpKind::Join(p) => {
            let (l, r) = (in_groups[0], in_groups[1]);
            let mut cols = l.cols.clone();
            cols.extend(r.cols.iter().copied());
            let width = est.row_width(&cols);
            GroupProps {
                rows: est.join_rows(l.rows, r.rows, p),
                cols,
                width,
                has_param: in_param || p.has_param(),
                relset,
            }
        }
        OpKind::Aggregate { keys, aggs } => {
            let input = in_groups[0];
            let mut cols = keys.clone();
            cols.extend(aggs.iter().map(|a| a.output));
            let width = est.row_width(&cols);
            GroupProps {
                rows: est.aggregate_rows(input.rows, keys),
                cols,
                width,
                has_param: in_param,
                relset,
            }
        }
        OpKind::Project(cols) => {
            let input = in_groups[0];
            GroupProps {
                rows: input.rows,
                cols: cols.clone(),
                width: est.row_width(cols),
                has_param: in_param,
                relset,
            }
        }
        OpKind::Root => GroupProps {
            rows: 1.0,
            cols: vec![],
            width: 1,
            has_param: false,
            relset,
        },
    }
}

/// Inserts a logical plan tree bottom-up; returns its root group.
fn insert_plan(dag: &mut Dag, est: &Estimator<'_>, plan: &LogicalPlan) -> GroupId {
    let (kind, inputs) = match plan {
        LogicalPlan::Scan(t) => (OpKind::Scan(*t), vec![]),
        LogicalPlan::Select { pred, input } => {
            let g = insert_plan(dag, est, input);
            (OpKind::Select(pred.clone()), vec![g])
        }
        LogicalPlan::Join { pred, left, right } => {
            let l = insert_plan(dag, est, left);
            let r = insert_plan(dag, est, right);
            (OpKind::Join(pred.clone()), vec![l, r])
        }
        LogicalPlan::Aggregate { keys, aggs, input } => {
            let g = insert_plan(dag, est, input);
            let mut keys = keys.clone();
            keys.sort_unstable();
            keys.dedup();
            let mut aggs = aggs.clone();
            aggs.sort_by_key(|a| a.output);
            (OpKind::Aggregate { keys, aggs }, vec![g])
        }
        LogicalPlan::Project { cols, input } => {
            let g = insert_plan(dag, est, input);
            let mut cols = cols.clone();
            cols.sort_unstable();
            cols.dedup();
            (OpKind::Project(cols), vec![g])
        }
    };
    let props = compute_props(dag, est, &kind, &inputs);
    let (g, _, _) = dag.insert_expr(kind, inputs, move || props, false, false);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_expr::{Atom, Predicate};
    use mqo_logical::Query;

    fn setup() -> (Catalog, LogicalPlan, LogicalPlan) {
        let mut cat = Catalog::new();
        let a = cat.table("a").rows(1000.0).int_key("ak").build();
        let b = cat
            .table("b")
            .rows(2000.0)
            .int_key("bk")
            .int_uniform("afk", 0, 999)
            .build();
        let c = cat
            .table("c")
            .rows(500.0)
            .int_key("ck")
            .int_uniform("bfk", 0, 1999)
            .build();
        let jab = Predicate::atom(Atom::eq_cols(cat.col("a", "ak"), cat.col("b", "afk")));
        let jbc = Predicate::atom(Atom::eq_cols(cat.col("b", "bk"), cat.col("c", "bfk")));
        // (a ⋈ b) ⋈ c
        let q1 = LogicalPlan::scan(a)
            .join(LogicalPlan::scan(b), jab.clone())
            .join(LogicalPlan::scan(c), jbc.clone());
        // a ⋈ (b ⋈ c)
        let q2 =
            LogicalPlan::scan(a).join(LogicalPlan::scan(b).join(LogicalPlan::scan(c), jbc), jab);
        (cat, q1, q2)
    }

    #[test]
    fn initial_dag_shares_leaves() {
        let (cat, q1, q2) = setup();
        let batch = Batch::of(vec![Query::new("q1", q1), Query::new("q2", q2)]);
        let dag = Dag::initial(&batch, &cat, DagConfig::default());
        // 3 scans + (ab) + (abc from q1) + (bc) + (abc from q2) + root = 8
        // scans unify across queries.
        assert_eq!(dag.num_groups(), 8);
    }

    #[test]
    fn expansion_unifies_equivalent_join_orders() {
        let (cat, q1, q2) = setup();
        let batch = Batch::of(vec![Query::new("q1", q1), Query::new("q2", q2)]);
        let dag = Dag::expand(&batch, &cat, DagConfig::default());
        // After expansion the two 3-relation root groups must have unified:
        // groups = 3 scans + {ab} + {bc} + {abc} + root = 7
        // ({ac} is a cross product — not generated by default.)
        assert_eq!(dag.num_groups(), 7, "\n{}", dag.dump());
        // the weights align with 2 queries
        assert_eq!(dag.root_weights(), &[1.0, 1.0]);
        // root op has two inputs pointing at the same group
        let ins = dag.op_inputs(dag.root_op());
        assert_eq!(ins.len(), 2);
        assert_eq!(dag.find(ins[0]), dag.find(ins[1]));
    }

    #[test]
    fn expansion_generates_commuted_and_associated_alternatives() {
        let (cat, q1, _) = setup();
        let batch = Batch::single("q1", q1);
        let dag = Dag::expand(&batch, &cat, DagConfig::default());
        // The {abc} group must contain at least: J(ab,c), J(c,ab), J(a,bc),
        // J(bc,a) — 4 alternatives (no cross products).
        let root_in = dag.op_inputs(dag.root_op())[0];
        let n = dag.group_ops(root_in).count();
        assert!(
            n >= 4,
            "expected ≥4 join alternatives, got {n}\n{}",
            dag.dump()
        );
    }

    #[test]
    fn cross_products_generated_only_when_enabled() {
        let (cat, q1, _) = setup();
        let batch = Batch::single("q1", q1);
        let dag = Dag::expand(
            &batch,
            &cat,
            DagConfig {
                allow_cross_products: true,
                ..DagConfig::default()
            },
        );
        // with cross products the {ac} group also exists: 3 scans + ab +
        // bc + ac + abc + root = 8
        assert_eq!(dag.num_groups(), 8, "\n{}", dag.dump());
    }

    #[test]
    fn props_compose() {
        let (cat, q1, _) = setup();
        let batch = Batch::single("q1", q1);
        let dag = Dag::expand(&batch, &cat, DagConfig::default());
        let root_in = dag.op_inputs(dag.root_op())[0];
        let g = dag.group(root_in);
        assert_eq!(g.relset.len(), 3);
        assert_eq!(g.cols.len(), 2 + 2 + 1); // ak + (bk, afk) + (ck, bfk)... a has 1 col
        assert!(g.rows >= 1.0);
    }
}
