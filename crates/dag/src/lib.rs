//! The AND-OR query DAG (paper §2).
//!
//! An AND-OR DAG compactly represents all alternative plans for a batch of
//! queries. **Equivalence nodes** (groups, the OR-nodes) stand for a result
//! set; **operation nodes** (the AND-nodes) are algebra operators whose
//! inputs are groups. The DAG is built from the initial query trees and
//! *expanded* by transformation rules (join commutativity/associativity
//! with PGLK97-style duplicate avoidance, select push-down); a hashing
//! scheme detects expressions derived more than once and **unifies** their
//! groups, which is what exposes common subexpressions across queries.
//! **Subsumption derivations** (§2.1) add the extra edges that let a
//! stronger selection be computed from a weaker one and sibling aggregates
//! from their union grouping.
//!
//! The batch hangs under a pseudo-root operation whose input edges carry
//! invocation weights — this is how the §5 nested/parameterized query
//! extension enters the search space.

mod build;
mod fingerprint;
mod memo;
mod rules;
mod sharability;
mod subsumption;

pub use fingerprint::{
    group_fingerprints, mix as mix_fingerprint, try_group_fingerprints, Fingerprint,
    FingerprintError,
};
pub use memo::{Dag, Group, GroupId, OpId, OpKind, Operation};
pub use sharability::{degree_of_sharing, sharable_groups};

/// Configuration for DAG construction.
#[derive(Debug, Clone, Copy)]
pub struct DagConfig {
    /// Allow join transformations to create cross products. Off by default
    /// (matches practical optimizers; the paper's queries never need them).
    pub allow_cross_products: bool,
    /// Add subsumption derivations after expansion (paper §2.1).
    pub enable_subsumption: bool,
    /// Safety valve: stop rule application after this many operations.
    pub max_ops: usize,
}

impl Default for DagConfig {
    fn default() -> Self {
        Self {
            allow_cross_products: false,
            enable_subsumption: true,
            max_ops: 2_000_000,
        }
    }
}
