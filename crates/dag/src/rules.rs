//! Transformation rules: join commutativity, join associativity and select
//! push-down, run to a fix point with duplicate-derivation avoidance in the
//! style of [PGLK97].
//!
//! All three rules insert alternatives through the memo's hash index, so a
//! re-derived expression costs one lookup and, when the same expression was
//! reached from a different group, triggers **unification** of the two
//! groups — exactly the mechanism the paper uses to detect common
//! subexpressions syntactically hidden by different join orders.

use crate::build::compute_props;
use crate::memo::{Dag, GroupId, OpId, OpKind};
use mqo_catalog::ColId;
use mqo_cost::Estimator;
use mqo_expr::{Atom, Conjunct, Predicate};
use mqo_util::FxHashSet;

/// Applies all rules until no new operations or merges occur.
pub(crate) fn apply_all(dag: &mut Dag, est: &Estimator<'_>) {
    let mut commuted: FxHashSet<OpId> = FxHashSet::default();
    let mut assoc_pairs: FxHashSet<(OpId, OpId)> = FxHashSet::default();
    let mut push_pairs: FxHashSet<(OpId, OpId)> = FxHashSet::default();
    let mut project_pairs: FxHashSet<(OpId, OpId)> = FxHashSet::default();
    loop {
        let version_before = dag.version;
        let mut idx = 0;
        while idx < dag.ops_allocated() {
            let oid = OpId::from_index(idx);
            idx += 1;
            if !dag.op(oid).alive {
                continue;
            }
            match dag.op(oid).kind.clone() {
                OpKind::Join(pred) => {
                    commute(dag, oid, &pred, &mut commuted);
                    associate(dag, est, oid, &pred, &mut assoc_pairs);
                }
                OpKind::Select(pred) => {
                    push_down(dag, est, oid, &pred, &mut push_pairs);
                    push_through_project(dag, est, oid, &pred, &mut project_pairs);
                }
                _ => {}
            }
            if dag.ops_allocated() > dag.config.max_ops {
                return; // safety valve: leave the DAG partially expanded
            }
        }
        if dag.version == version_before {
            return;
        }
    }
}

/// Join commutativity: `J(l, r) → J(r, l)`. Applied once per op; the
/// derived twin is flagged so it is never commuted back ([PGLK97]).
fn commute(dag: &mut Dag, oid: OpId, pred: &Predicate, commuted: &mut FxHashSet<OpId>) {
    if dag.op(oid).from_commutativity || !commuted.insert(oid) {
        return;
    }
    let ins = dag.op_inputs(oid);
    let group = dag.op_group(oid);
    dag.insert_op(
        OpKind::Join(pred.clone()),
        vec![ins[1], ins[0]],
        Some(group),
        false,
        true,
    );
}

/// Join associativity: `(A ⋈ B) ⋈ C → A ⋈ (B ⋈ C)`, with the predicate
/// conjuncts re-distributed between the new joins by column coverage.
/// Together with commutativity this reaches every bushy join order.
fn associate(
    dag: &mut Dag,
    est: &Estimator<'_>,
    oid: OpId,
    pred: &Predicate,
    done: &mut FxHashSet<(OpId, OpId)>,
) {
    let [outer_l, outer_r] = dag.op_inputs(oid)[..] else {
        return;
    };
    // join predicates must be pure conjunctions to re-distribute
    let Some(outer_conj) = single_conjunct(pred) else {
        return;
    };
    let child_joins: Vec<(OpId, Predicate)> = dag
        .group_ops(outer_l)
        .filter_map(|o| match &dag.op(o).kind {
            OpKind::Join(p) => Some((o, p.clone())),
            _ => None,
        })
        .collect();
    let group = dag.op_group(oid);
    for (child, child_pred) in child_joins {
        if !done.insert((oid, child)) {
            continue;
        }
        let Some(child_conj) = single_conjunct(&child_pred) else {
            continue;
        };
        let [a, b] = dag.op_inputs(child)[..] else {
            continue;
        };
        let c = outer_r;
        // pool of conjuncts to re-distribute
        let mut pool: Vec<Atom> = outer_conj.atoms().to_vec();
        pool.extend(child_conj.atoms().iter().cloned());
        let cols_a = col_set(dag, a);
        let cols_bc: FxHashSet<ColId> = col_set(dag, b).union(&col_set(dag, c)).copied().collect();
        let (inner_atoms, outer_atoms): (Vec<Atom>, Vec<Atom>) = pool
            .into_iter()
            .partition(|at| atom_cols(at).iter().all(|col| cols_bc.contains(col)));
        if !dag.config.allow_cross_products {
            // inner join must connect B and C; outer must connect A to BC
            let cols_b = col_set(dag, b);
            let cols_c = col_set(dag, c);
            let inner_connected = inner_atoms.iter().any(|at| {
                let cs = atom_cols(at);
                cs.iter().any(|c| cols_b.contains(c)) && cs.iter().any(|c| cols_c.contains(c))
            });
            let outer_connected = outer_atoms.iter().any(|at| {
                let cs = atom_cols(at);
                cs.iter().any(|c| cols_a.contains(c)) && cs.iter().any(|c| cols_bc.contains(c))
            });
            if !inner_connected || !outer_connected {
                continue;
            }
        }
        let inner_pred = Predicate::all(inner_atoms);
        let outer_pred = Predicate::all(outer_atoms);
        let inner_kind = OpKind::Join(inner_pred);
        let props = compute_props(dag, est, &inner_kind, &[b, c]);
        let (bc, _, _) = dag.insert_expr(inner_kind, vec![b, c], || props, false, false);
        dag.insert_op(
            OpKind::Join(outer_pred),
            vec![a, bc],
            Some(group),
            false,
            false,
        );
    }
}

/// Select push-down: `σ_p(A ⋈ B) → σ_rest(σ_pA(A) ⋈ σ_pB(B))`, moving each
/// conjunct to the lowest side that covers its columns.
fn push_down(
    dag: &mut Dag,
    est: &Estimator<'_>,
    oid: OpId,
    pred: &Predicate,
    done: &mut FxHashSet<(OpId, OpId)>,
) {
    let [input] = dag.op_inputs(oid)[..] else {
        return;
    };
    let Some(conj) = single_conjunct(pred) else {
        return;
    };
    let child_joins: Vec<(OpId, Predicate)> = dag
        .group_ops(input)
        .filter_map(|o| match &dag.op(o).kind {
            OpKind::Join(p) => Some((o, p.clone())),
            _ => None,
        })
        .collect();
    let group = dag.op_group(oid);
    for (child, join_pred) in child_joins {
        if !done.insert((oid, child)) {
            continue;
        }
        let [l, r] = dag.op_inputs(child)[..] else {
            continue;
        };
        let cols_l = col_set(dag, l);
        let cols_r = col_set(dag, r);
        let mut pl = Vec::new();
        let mut pr = Vec::new();
        let mut rest = Vec::new();
        for at in conj.atoms() {
            let cs = atom_cols(at);
            if cs.iter().all(|c| cols_l.contains(c)) {
                pl.push(at.clone());
            } else if cs.iter().all(|c| cols_r.contains(c)) {
                pr.push(at.clone());
            } else {
                rest.push(at.clone());
            }
        }
        if pl.is_empty() && pr.is_empty() {
            continue; // nothing pushes
        }
        let side = |side_group: GroupId, atoms: Vec<Atom>, dag: &mut Dag| -> GroupId {
            if atoms.is_empty() {
                return side_group;
            }
            let kind = OpKind::Select(Predicate::all(atoms));
            let props = compute_props(dag, est, &kind, &[side_group]);
            let (g, _, _) = dag.insert_expr(kind, vec![side_group], || props, false, false);
            g
        };
        let l2 = side(l, pl, dag);
        let r2 = side(r, pr, dag);
        if rest.is_empty() {
            dag.insert_op(
                OpKind::Join(join_pred),
                vec![l2, r2],
                Some(group),
                false,
                false,
            );
        } else {
            let jk = OpKind::Join(join_pred);
            let props = compute_props(dag, est, &jk, &[l2, r2]);
            let (j, _, _) = dag.insert_expr(jk, vec![l2, r2], || props, false, false);
            dag.insert_op(
                OpKind::Select(Predicate::all(rest)),
                vec![j],
                Some(group),
                false,
                false,
            );
        }
    }
}

/// Select/project commutation: `σ_p(Π_cols(E)) → Π_cols(σ_p(E))` — legal
/// whenever the plan was well-formed (`p` only references projected
/// columns). This lets selections travel through projection boundaries on
/// their way to index access paths.
fn push_through_project(
    dag: &mut Dag,
    est: &Estimator<'_>,
    oid: OpId,
    pred: &Predicate,
    done: &mut FxHashSet<(OpId, OpId)>,
) {
    let [input] = dag.op_inputs(oid)[..] else {
        return;
    };
    let child_projects: Vec<(OpId, Vec<ColId>)> = dag
        .group_ops(input)
        .filter_map(|o| match &dag.op(o).kind {
            OpKind::Project(cols) => Some((o, cols.clone())),
            _ => None,
        })
        .collect();
    let group = dag.op_group(oid);
    for (child, cols) in child_projects {
        if !done.insert((oid, child)) {
            continue;
        }
        let [e] = dag.op_inputs(child)[..] else {
            continue;
        };
        let sel_kind = OpKind::Select(pred.clone());
        let props = compute_props(dag, est, &sel_kind, &[e]);
        let (sel_g, _, _) = dag.insert_expr(sel_kind, vec![e], || props, false, false);
        dag.insert_op(
            OpKind::Project(cols),
            vec![sel_g],
            Some(group),
            false,
            false,
        );
    }
}

fn single_conjunct(p: &Predicate) -> Option<&Conjunct> {
    match p.disjuncts() {
        [c] => Some(c),
        _ => None,
    }
}

fn col_set(dag: &Dag, g: GroupId) -> FxHashSet<ColId> {
    dag.group(g).cols.iter().copied().collect()
}

fn atom_cols(a: &Atom) -> Vec<ColId> {
    let mut v = Vec::new();
    a.collect_cols(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagConfig;
    use mqo_catalog::Catalog;
    use mqo_expr::CmpOp;
    use mqo_logical::{Batch, LogicalPlan, Query};

    fn chain_catalog(n: usize, rows: f64) -> Catalog {
        let mut cat = Catalog::new();
        for i in 0..n {
            let _ = cat
                .table(&format!("t{i}"))
                .rows(rows)
                .int_key("p")
                .int_uniform("sp", 0, rows as i64 - 1)
                .build();
        }
        cat
    }

    fn chain_query(cat: &Catalog, lo: usize, hi: usize) -> LogicalPlan {
        // t_lo ⋈ t_{lo+1} ⋈ ... ⋈ t_hi on t_i.sp = t_{i+1}.p
        let mut plan = LogicalPlan::scan(cat.table_by_name(&format!("t{lo}")).unwrap().id);
        for i in lo + 1..=hi {
            let pred = Predicate::atom(Atom::eq_cols(
                cat.col(&format!("t{}", i - 1), "sp"),
                cat.col(&format!("t{i}"), "p"),
            ));
            plan = plan.join(
                LogicalPlan::scan(cat.table_by_name(&format!("t{i}")).unwrap().id),
                pred,
            );
        }
        plan
    }

    #[test]
    fn chain_expansion_has_one_group_per_connected_subchain() {
        // 4-relation chain: connected subchains = 4+3+2+1 = 10 groups,
        // plus root = 11.
        let cat = chain_catalog(4, 100.0);
        let q = chain_query(&cat, 0, 3);
        let dag = Dag::expand(&Batch::single("q", q), &cat, DagConfig::default());
        assert_eq!(dag.num_groups(), 11, "\n{}", dag.dump());
    }

    #[test]
    fn overlapping_chain_queries_share_subchains() {
        // q1 over t0..t2, q2 over t1..t3: share the {t1,t2} group.
        let cat = chain_catalog(4, 100.0);
        let q1 = chain_query(&cat, 0, 2);
        let q2 = chain_query(&cat, 1, 3);
        let dag = Dag::expand(
            &Batch::of(vec![Query::new("q1", q1), Query::new("q2", q2)]),
            &cat,
            DagConfig::default(),
        );
        // groups: 4 scans, subchains {01},{12},{23},{012},{123}, root = 10
        assert_eq!(dag.num_groups(), 10, "\n{}", dag.dump());
    }

    #[test]
    fn select_pushdown_creates_selected_leaf_alternatives() {
        let cat = chain_catalog(2, 100.0);
        let pred = Predicate::atom(Atom::cmp(cat.col("t0", "p"), CmpOp::Lt, 50i64));
        let join = chain_query(&cat, 0, 1);
        let q = join.select(pred);
        let dag = Dag::expand(&Batch::single("q", q), &cat, DagConfig::default());
        // Expect a group for σ(t0): one of the ops in the σ(join) group
        // should be a Join with a selected left input.
        let sel_scan = dag.topo_order().iter().any(|&g| {
            dag.group_ops(g).any(|o| {
                matches!(dag.op(o).kind, OpKind::Select(_))
                    && dag.op_inputs(o).iter().all(|&i| {
                        dag.group_ops(i)
                            .any(|oo| matches!(dag.op(oo).kind, OpKind::Scan(_)))
                    })
            })
        });
        assert!(
            sel_scan,
            "pushdown did not create σ over scan\n{}",
            dag.dump()
        );
    }

    #[test]
    fn five_relation_chain_group_count() {
        // 5-chain: 5+4+3+2+1 = 15 subchains + root = 16 groups
        let cat = chain_catalog(5, 100.0);
        let q = chain_query(&cat, 0, 4);
        let dag = Dag::expand(&Batch::single("q", q), &cat, DagConfig::default());
        assert_eq!(dag.num_groups(), 16, "\n{}", dag.dump());
    }

    #[test]
    fn expansion_is_idempotent_wrt_group_count() {
        let cat = chain_catalog(3, 100.0);
        let q = chain_query(&cat, 0, 2);
        let d1 = Dag::expand(&Batch::single("q", q.clone()), &cat, DagConfig::default());
        let d2 = Dag::expand(&Batch::single("q", q), &cat, DagConfig::default());
        assert_eq!(d1.num_groups(), d2.num_groups());
        assert_eq!(d1.num_ops(), d2.num_ops());
    }
}
