//! The memo: groups (equivalence nodes), operations (AND nodes), the
//! operation hash index, and hashing-based unification.

use mqo_catalog::{ColId, TableId};
use mqo_expr::{AggExpr, Predicate};
use mqo_util::{BitSet, FxHashMap, UnionFind};

use crate::DagConfig;

mqo_util::id_type!(
    /// Identifies an equivalence node (group) in the DAG.
    GroupId
);
mqo_util::id_type!(
    /// Identifies an operation node in the DAG.
    OpId
);

/// Logical operator stored in an operation node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Base-table scan (a leaf; its group has no inputs).
    Scan(TableId),
    /// Selection.
    Select(Predicate),
    /// Inner join.
    Join(Predicate),
    /// Group-by aggregation.
    Aggregate {
        /// Group-by keys (sorted).
        keys: Vec<ColId>,
        /// Aggregates (sorted by output column).
        aggs: Vec<AggExpr>,
    },
    /// Projection.
    Project(Vec<ColId>),
    /// The pseudo-root no-op combining all query roots (paper §2.1);
    /// exactly one exists per DAG.
    Root,
}

impl OpKind {
    /// Short operator name for explain output.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Scan(_) => "Scan",
            OpKind::Select(_) => "Select",
            OpKind::Join(_) => "Join",
            OpKind::Aggregate { .. } => "Aggregate",
            OpKind::Project(_) => "Project",
            OpKind::Root => "Root",
        }
    }
}

/// An operation node: an operator applied to input groups.
#[derive(Debug, Clone)]
pub struct Operation {
    /// The operator.
    pub kind: OpKind,
    /// Input groups (raw ids; resolve through [`Dag::find`]).
    inputs: Vec<GroupId>,
    /// Owning group (raw id).
    group: GroupId,
    /// False once unification discovered this op duplicates another.
    pub alive: bool,
    /// True if added by a subsumption derivation (§2.1). Volcano-SH's
    /// pre-pass/undo logic and plan extraction treat these specially.
    pub from_subsumption: bool,
    /// True if produced by the commutativity rule (PGLK97: never commute a
    /// commuted op again).
    pub from_commutativity: bool,
    /// Cached canonical hash key (kept in sync by re-keying on merges).
    key: (OpKind, Vec<GroupId>),
}

/// An equivalence node: a set of alternative operations computing the same
/// result, plus logical properties shared by all of them.
#[derive(Debug, Clone)]
pub struct Group {
    /// Alternative operations (may contain dead ids; filter via accessors).
    ops: Vec<OpId>,
    /// Operations that use this group as an input (may contain dead ids).
    parents: Vec<OpId>,
    /// Estimated output rows.
    pub rows: f64,
    /// Output columns (sorted set).
    pub cols: Vec<ColId>,
    /// Bytes per output row.
    pub width: u32,
    /// True if the result depends on a correlation parameter — such nodes
    /// cannot be materialized for sharing (paper §5).
    pub has_param: bool,
    /// Base tables contributing to this result.
    pub relset: BitSet,
    /// Topological number (children before parents); assigned by
    /// [`Dag::renumber`].
    pub topo: u32,
}

/// Logical properties for a new group, computed by the builder/rules.
#[derive(Debug, Clone)]
pub struct GroupProps {
    /// Estimated output rows.
    pub rows: f64,
    /// Output columns (will be sorted).
    pub cols: Vec<ColId>,
    /// Bytes per row.
    pub width: u32,
    /// Parameter dependence.
    pub has_param: bool,
    /// Base relations.
    pub relset: BitSet,
}

/// The AND-OR DAG.
#[derive(Debug, Clone)]
pub struct Dag {
    groups: Vec<Group>,
    ops: Vec<Operation>,
    uf: UnionFind,
    index: FxHashMap<(OpKind, Vec<GroupId>), OpId>,
    root: Option<GroupId>,
    root_weights: Vec<f64>,
    topo_order: Vec<GroupId>,
    pub(crate) config: DagConfig,
    /// Bumped on every structural change (new op or merge); the rule
    /// engine uses it to detect fix point.
    pub(crate) version: u64,
}

impl Dag {
    /// An empty DAG (used by the builder; most callers want
    /// `Dag::expand`).
    #[must_use]
    pub fn empty(config: DagConfig) -> Self {
        Self {
            groups: Vec::new(),
            ops: Vec::new(),
            uf: UnionFind::new(),
            index: FxHashMap::default(),
            root: None,
            root_weights: Vec::new(),
            topo_order: Vec::new(),
            config,
            version: 0,
        }
    }

    // ------------------------------------------------------------------
    // Identity

    /// Resolves a possibly-merged group id to its canonical id.
    #[inline]
    #[must_use]
    pub fn find(&self, g: GroupId) -> GroupId {
        GroupId::from_index(self.uf.find_const(g.index()))
    }

    fn find_mut(&mut self, g: GroupId) -> GroupId {
        GroupId::from_index(self.uf.find(g.index()))
    }

    // ------------------------------------------------------------------
    // Accessors

    /// The canonical group struct for `g`.
    #[must_use]
    pub fn group(&self, g: GroupId) -> &Group {
        &self.groups[self.find(g).index()]
    }

    /// The operation struct for `o`.
    #[must_use]
    pub fn op(&self, o: OpId) -> &Operation {
        &self.ops[o.index()]
    }

    /// Alive operations of a group, in insertion order.
    pub fn group_ops(&self, g: GroupId) -> impl Iterator<Item = OpId> + '_ {
        self.groups[self.find(g).index()]
            .ops
            .iter()
            .copied()
            .filter(|&o| self.ops[o.index()].alive)
    }

    /// Alive, de-duplicated parent operations of a group.
    #[must_use]
    pub fn parents_of(&self, g: GroupId) -> Vec<OpId> {
        let mut out: Vec<OpId> = self.groups[self.find(g).index()]
            .parents
            .iter()
            .copied()
            .filter(|&o| self.ops[o.index()].alive)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Resolved input groups of an operation.
    #[must_use]
    pub fn op_inputs(&self, o: OpId) -> Vec<GroupId> {
        self.ops[o.index()]
            .inputs
            .iter()
            .map(|&g| self.find(g))
            .collect()
    }

    /// Resolved owning group of an operation.
    #[must_use]
    pub fn op_group(&self, o: OpId) -> GroupId {
        self.find(self.ops[o.index()].group)
    }

    /// The pseudo-root group (panics if the DAG has no queries).
    ///
    /// # Panics
    ///
    /// Panics if the DAG has no root (only `Dag::expand` output is rooted).
    #[must_use]
    pub fn root(&self) -> GroupId {
        self.find(self.root.expect("DAG has no root"))
    }

    /// Per-query invocation weights, aligned with the root op's inputs.
    #[must_use]
    pub fn root_weights(&self) -> &[f64] {
        &self.root_weights
    }

    /// The root operation node.
    ///
    /// # Panics
    ///
    /// Panics if the DAG has no root or the root group has no op.
    #[must_use]
    pub fn root_op(&self) -> OpId {
        self.group_ops(self.root())
            .next()
            .expect("root group has an op")
    }

    /// Canonical groups reachable from the root, children before parents.
    #[must_use]
    pub fn topo_order(&self) -> &[GroupId] {
        &self.topo_order
    }

    /// Number of alive operations.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.alive).count()
    }

    /// Number of canonical reachable groups.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.topo_order.len()
    }

    /// Total operation slots ever allocated (dead included) — the safety
    /// valve compares against `DagConfig::max_ops`.
    #[must_use]
    pub fn ops_allocated(&self) -> usize {
        self.ops.len()
    }

    // ------------------------------------------------------------------
    // Construction

    /// Installs the pseudo-root op over the query root groups with their
    /// invocation weights.
    pub(crate) fn set_root(&mut self, query_roots: Vec<GroupId>, weights: Vec<f64>) {
        assert_eq!(query_roots.len(), weights.len());
        assert!(self.root.is_none(), "root already set");
        let cols = Vec::new();
        let props = GroupProps {
            rows: 1.0,
            cols,
            width: 1,
            has_param: false,
            relset: BitSet::new(),
        };
        let g = self.new_group(props);
        let (g, _o, _) = self.insert_op(OpKind::Root, query_roots, Some(g), false, false);
        self.root = Some(g);
        self.root_weights = weights;
    }

    /// Creates a fresh group with the given properties.
    pub(crate) fn new_group(&mut self, props: GroupProps) -> GroupId {
        let mut cols = props.cols;
        cols.sort_unstable();
        cols.dedup();
        let id = GroupId::from_index(self.groups.len());
        self.groups.push(Group {
            ops: Vec::new(),
            parents: Vec::new(),
            rows: props.rows.max(1.0),
            cols,
            width: props.width.max(1),
            has_param: props.has_param,
            relset: props.relset,
            topo: 0,
        });
        let uf_id = self.uf.push();
        debug_assert_eq!(uf_id, id.index());
        id
    }

    /// Inserts an operation. If an identical expression already exists the
    /// existing op is returned and, when `target` names a different group,
    /// the two groups are **unified**. Returns the (canonical) owning
    /// group, the op id and whether the op is new.
    ///
    /// When `target` is `None` the caller must guarantee the op is new or
    /// find it via the index (use [`Dag::lookup`]); `insert_expr` wraps the
    /// common find-or-create pattern.
    pub(crate) fn insert_op(
        &mut self,
        kind: OpKind,
        inputs: Vec<GroupId>,
        target: Option<GroupId>,
        from_subsumption: bool,
        from_commutativity: bool,
    ) -> (GroupId, OpId, bool) {
        let mut inputs = inputs;
        for g in &mut inputs {
            *g = self.find_mut(*g);
        }
        let key = (kind.clone(), inputs.clone());
        if let Some(&existing) = self.index.get(&key) {
            debug_assert!(self.ops[existing.index()].alive);
            let eg = self.op_group(existing);
            if let Some(t) = target {
                let t = self.find_mut(t);
                if t != eg {
                    self.merge(t, eg);
                }
            }
            return (self.op_group(existing), existing, false);
        }
        let group = match target {
            Some(t) => self.find_mut(t),
            None => panic!("insert_op without target for unknown expression; use insert_expr"),
        };
        let id = OpId::from_index(self.ops.len());
        self.ops.push(Operation {
            kind,
            inputs: inputs.clone(),
            group,
            alive: true,
            from_subsumption,
            from_commutativity,
            key: key.clone(),
        });
        self.index.insert(key, id);
        self.version += 1;
        self.groups[group.index()].ops.push(id);
        for g in inputs {
            self.groups[g.index()].parents.push(id);
        }
        (group, id, true)
    }

    /// Find-or-create: returns the group computing `kind(inputs)`,
    /// creating a fresh group with `props` when the expression is new.
    pub(crate) fn insert_expr(
        &mut self,
        kind: OpKind,
        inputs: Vec<GroupId>,
        props: impl FnOnce() -> GroupProps,
        from_subsumption: bool,
        from_commutativity: bool,
    ) -> (GroupId, OpId, bool) {
        let mut resolved = inputs;
        for g in &mut resolved {
            *g = self.find_mut(*g);
        }
        let key = (kind.clone(), resolved.clone());
        if let Some(&existing) = self.index.get(&key) {
            return (self.op_group(existing), existing, false);
        }
        let g = self.new_group(props());
        self.insert_op(
            kind,
            resolved,
            Some(g),
            from_subsumption,
            from_commutativity,
        )
    }

    /// Looks an expression up without inserting.
    #[must_use]
    pub fn lookup(&self, kind: &OpKind, inputs: &[GroupId]) -> Option<OpId> {
        let resolved: Vec<GroupId> = inputs.iter().map(|&g| self.find(g)).collect();
        self.index.get(&(kind.clone(), resolved)).copied()
    }

    // ------------------------------------------------------------------
    // Unification

    /// Merges two equivalence classes (unification, §2.1). Re-keys parent
    /// operations; duplicates discovered along the way are killed and may
    /// cascade further merges.
    pub(crate) fn merge(&mut self, a: GroupId, b: GroupId) {
        let mut work = vec![(a, b)];
        while let Some((a, b)) = work.pop() {
            let ra = self.find_mut(a);
            let rb = self.find_mut(b);
            if ra == rb {
                continue;
            }
            debug_assert_eq!(
                self.groups[ra.index()].relset,
                self.groups[rb.index()].relset,
                "unifying groups over different relations"
            );
            self.version += 1;
            let rep = GroupId::from_index(self.uf.union(ra.index(), rb.index()));
            let lose = if rep == ra { rb } else { ra };
            let moved_ops = std::mem::take(&mut self.groups[lose.index()].ops);
            let moved_parents = std::mem::take(&mut self.groups[lose.index()].parents);
            let lose_param = self.groups[lose.index()].has_param;
            {
                let g = &mut self.groups[rep.index()];
                g.ops.extend(moved_ops);
                g.parents.extend(moved_parents);
                g.has_param |= lose_param;
            }
            // Every op that takes the merged class as input may now have a
            // stale key. Re-key them; collisions kill duplicates and can
            // queue further merges.
            let affected: Vec<OpId> = self.groups[rep.index()]
                .parents
                .iter()
                .copied()
                .filter(|&o| self.ops[o.index()].alive)
                .collect();
            for op in affected {
                self.rekey(op, &mut work);
            }
        }
    }

    fn rekey(&mut self, op: OpId, work: &mut Vec<(GroupId, GroupId)>) {
        if !self.ops[op.index()].alive {
            return;
        }
        let old_key = self.ops[op.index()].key.clone();
        let new_inputs: Vec<GroupId> = self.ops[op.index()]
            .inputs
            .clone()
            .into_iter()
            .map(|g| self.find_mut(g))
            .collect();
        let new_key = (old_key.0.clone(), new_inputs.clone());
        if new_key == old_key {
            return;
        }
        if self.index.get(&old_key) == Some(&op) {
            self.index.remove(&old_key);
        }
        self.ops[op.index()].inputs = new_inputs;
        match self.index.get(&new_key) {
            Some(&other) if other != op => {
                // Duplicate expression: kill `op`, unify owning groups.
                self.ops[op.index()].alive = false;
                let g1 = self.op_group(op);
                let g2 = self.op_group(other);
                if g1 != g2 {
                    work.push((g1, g2));
                }
            }
            _ => {
                self.index.insert(new_key.clone(), op);
                self.ops[op.index()].key = new_key;
            }
        }
    }

    // ------------------------------------------------------------------
    // Topological numbering

    /// Recomputes the reachable-group topological order and per-group
    /// numbers. Children receive smaller numbers than parents, the
    /// property the incremental cost update's `PropHeap` relies on
    /// (paper Figure 5). Panics if a cycle sneaked in.
    ///
    /// # Panics
    ///
    /// Panics if the op edges contain a cycle.
    pub fn renumber(&mut self) {
        let root = self.root();
        let mut order = Vec::new();
        let mut state: FxHashMap<GroupId, u8> = FxHashMap::default(); // 1=visiting, 2=done
                                                                      // Iterative DFS with an explicit stack of (group, child_cursor).
        let mut stack: Vec<(GroupId, Vec<GroupId>, usize)> = Vec::new();
        let children_of = |dag: &Dag, g: GroupId| -> Vec<GroupId> {
            let mut cs: Vec<GroupId> = dag.group_ops(g).flat_map(|o| dag.op_inputs(o)).collect();
            cs.sort_unstable();
            cs.dedup();
            cs
        };
        state.insert(root, 1);
        stack.push((root, children_of(self, root), 0));
        while let Some((g, children, mut cursor)) = stack.pop() {
            let mut descended = false;
            while cursor < children.len() {
                let c = children[cursor];
                cursor += 1;
                match state.get(&c) {
                    Some(1) => panic!("cycle in AND-OR DAG involving group {c:?}"),
                    Some(_) => continue,
                    None => {
                        state.insert(c, 1);
                        stack.push((g, children, cursor));
                        stack.push((c, children_of(self, c), 0));
                        descended = true;
                        break;
                    }
                }
            }
            if !descended {
                state.insert(g, 2);
                order.push(g);
            }
        }
        for (i, &g) in order.iter().enumerate() {
            self.groups[g.index()].topo = i as u32;
        }
        self.topo_order = order;
    }

    /// Renders the DAG for debugging: one line per group with its ops.
    #[must_use]
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for &g in &self.topo_order {
            let grp = self.group(g);
            let _ = write!(
                s,
                "g{} rows={:.0} cols={} ops:",
                g,
                grp.rows,
                grp.cols.len()
            );
            for o in self.group_ops(g) {
                let op = self.op(o);
                let ins: Vec<String> = self.op_inputs(o).iter().map(|i| format!("g{i}")).collect();
                let _ = write!(s, " [{} {}({})]", o, op.kind.name(), ins.join(","));
            }
            let _ = writeln!(s);
        }
        s
    }

    // ------------------------------------------------------------------
    // Verifier negative-test seams
    //
    // `mqo-verify`'s negative tests must build *invalid* DAGs — states
    // the public construction API correctly refuses to produce. These
    // seams bypass the index/unification machinery for exactly that
    // purpose. Hidden from docs; never call them outside tests.

    /// Creates a fresh group copying `like`'s logical properties
    /// (including its topo number, so corruption tests do not trip the
    /// unrelated topo-monotonicity check).
    #[doc(hidden)]
    pub fn testing_new_group_like(&mut self, like: GroupId) -> GroupId {
        let src = self.group(like).clone();
        let g = self.new_group(GroupProps {
            rows: src.rows,
            cols: src.cols.clone(),
            width: src.width,
            has_param: src.has_param,
            relset: src.relset.clone(),
        });
        self.groups[g.index()].topo = src.topo;
        g
    }

    /// Adds an op to `group` **bypassing the index** — duplicates are
    /// not unified, which is precisely what collision tests need.
    /// Parent back-links are maintained.
    #[doc(hidden)]
    pub fn testing_add_raw_op(
        &mut self,
        kind: OpKind,
        inputs: Vec<GroupId>,
        group: GroupId,
        from_subsumption: bool,
    ) -> OpId {
        let mut inputs = inputs;
        for g in &mut inputs {
            *g = self.find(*g);
        }
        let group = self.find(group);
        let id = OpId::from_index(self.ops.len());
        self.ops.push(Operation {
            kind: kind.clone(),
            inputs: inputs.clone(),
            group,
            alive: true,
            from_subsumption,
            from_commutativity: false,
            key: (kind, inputs.clone()),
        });
        self.groups[group.index()].ops.push(id);
        for g in inputs {
            self.groups[g.index()].parents.push(id);
        }
        self.version += 1;
        id
    }

    /// Redirects input `idx` of `op` to `g`, maintaining parent lists.
    #[doc(hidden)]
    pub fn testing_set_op_input(&mut self, op: OpId, idx: usize, g: GroupId) {
        let g = self.find(g);
        let old = self.ops[op.index()].inputs[idx];
        let old = self.find(old);
        self.ops[op.index()].inputs[idx] = g;
        let parents = &mut self.groups[old.index()].parents;
        if let Some(pos) = parents.iter().position(|&p| p == op) {
            parents.remove(pos);
        }
        self.groups[g.index()].parents.push(op);
        self.version += 1;
    }

    /// Empties `g`'s parent back-link list (breaking referential
    /// integrity on purpose).
    #[doc(hidden)]
    pub fn testing_clear_parents(&mut self, g: GroupId) {
        let g = self.find(g);
        self.groups[g.index()].parents.clear();
    }

    /// Overwrites the root invocation weights.
    #[doc(hidden)]
    pub fn testing_set_root_weights(&mut self, weights: Vec<f64>) {
        self.root_weights = weights;
    }

    /// Marks `op` dead without unification bookkeeping.
    #[doc(hidden)]
    pub fn testing_kill_op(&mut self, op: OpId) {
        self.ops[op.index()].alive = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_util::BitSet;

    fn props(rows: f64, rel: usize) -> GroupProps {
        GroupProps {
            rows,
            cols: vec![],
            width: 8,
            has_param: false,
            relset: BitSet::singleton(rel),
        }
    }

    fn join_props(rows: f64, rels: &[usize]) -> GroupProps {
        GroupProps {
            rows,
            cols: vec![],
            width: 8,
            has_param: false,
            relset: rels.iter().copied().collect(),
        }
    }

    #[test]
    fn insert_dedupes_identical_expressions() {
        let mut dag = Dag::empty(DagConfig::default());
        let (ga, _, new_a) = dag.insert_expr(
            OpKind::Scan(TableId(0)),
            vec![],
            || props(10.0, 0),
            false,
            false,
        );
        assert!(new_a);
        let (ga2, _, new_a2) = dag.insert_expr(
            OpKind::Scan(TableId(0)),
            vec![],
            || props(10.0, 0),
            false,
            false,
        );
        assert!(!new_a2);
        assert_eq!(ga, ga2);
    }

    #[test]
    fn unification_merges_groups_via_common_derivation() {
        // Two distinct groups for "A⋈B" (as if from two query trees),
        // then the same expression inserted into both → they unify.
        let mut dag = Dag::empty(DagConfig::default());
        let (a, _, _) = dag.insert_expr(
            OpKind::Scan(TableId(0)),
            vec![],
            || props(10.0, 0),
            false,
            false,
        );
        let (b, _, _) = dag.insert_expr(
            OpKind::Scan(TableId(1)),
            vec![],
            || props(10.0, 1),
            false,
            false,
        );
        let p = Predicate::true_();
        // group 1 contains Join(a,b)
        let g1 = dag.new_group(join_props(100.0, &[0, 1]));
        dag.insert_op(OpKind::Join(p.clone()), vec![a, b], Some(g1), false, false);
        // group 2 contains Join(b,a) — a different expression
        let g2 = dag.new_group(join_props(100.0, &[0, 1]));
        dag.insert_op(OpKind::Join(p.clone()), vec![b, a], Some(g2), false, false);
        assert_ne!(dag.find(g1), dag.find(g2));
        // now derive Join(a,b) into g2 (e.g. via commutativity): unify
        dag.insert_op(OpKind::Join(p), vec![a, b], Some(g2), false, true);
        assert_eq!(dag.find(g1), dag.find(g2));
        // the merged group holds both alternatives
        let n = dag.group_ops(g1).count();
        assert_eq!(n, 2);
    }

    #[test]
    fn cascading_merge_rekeys_parents() {
        // r0, r1 leaves; two parallel towers:
        //   gX = J(r0,r1) in two separate groups gx1, gx2
        //   top1 = J(gx1, r2), top2 = J(gx2, r2)
        // Unifying gx1/gx2 must re-key top1/top2 into the same expression
        // and cascade-merge their groups.
        let mut dag = Dag::empty(DagConfig::default());
        let (r0, _, _) = dag.insert_expr(
            OpKind::Scan(TableId(0)),
            vec![],
            || props(10.0, 0),
            false,
            false,
        );
        let (r1, _, _) = dag.insert_expr(
            OpKind::Scan(TableId(1)),
            vec![],
            || props(10.0, 1),
            false,
            false,
        );
        let (r2, _, _) = dag.insert_expr(
            OpKind::Scan(TableId(2)),
            vec![],
            || props(10.0, 2),
            false,
            false,
        );
        let p = Predicate::true_();
        let gx1 = dag.new_group(join_props(100.0, &[0, 1]));
        dag.insert_op(
            OpKind::Join(p.clone()),
            vec![r0, r1],
            Some(gx1),
            false,
            false,
        );
        let gx2 = dag.new_group(join_props(100.0, &[0, 1]));
        dag.insert_op(
            OpKind::Join(p.clone()),
            vec![r1, r0],
            Some(gx2),
            false,
            false,
        );
        let top1 = dag.new_group(join_props(1000.0, &[0, 1, 2]));
        dag.insert_op(
            OpKind::Join(p.clone()),
            vec![gx1, r2],
            Some(top1),
            false,
            false,
        );
        let top2 = dag.new_group(join_props(1000.0, &[0, 1, 2]));
        dag.insert_op(OpKind::Join(p), vec![gx2, r2], Some(top2), false, false);
        assert_ne!(dag.find(top1), dag.find(top2));
        dag.merge(gx1, gx2);
        // tops collapse: same expression J(gx, r2)
        assert_eq!(dag.find(top1), dag.find(top2));
        // only one alive op remains in the merged top group
        assert_eq!(dag.group_ops(top1).count(), 1);
    }

    #[test]
    fn topo_orders_children_first() {
        let mut dag = Dag::empty(DagConfig::default());
        let (a, _, _) = dag.insert_expr(
            OpKind::Scan(TableId(0)),
            vec![],
            || props(10.0, 0),
            false,
            false,
        );
        let (b, _, _) = dag.insert_expr(
            OpKind::Scan(TableId(1)),
            vec![],
            || props(10.0, 1),
            false,
            false,
        );
        let p = Predicate::true_();
        let (j, _, _) = dag.insert_expr(
            OpKind::Join(p),
            vec![a, b],
            || join_props(100.0, &[0, 1]),
            false,
            false,
        );
        dag.set_root(vec![j], vec![1.0]);
        dag.renumber();
        let order = dag.topo_order();
        assert_eq!(order.len(), 4); // a, b, join, root
        let pos = |g: GroupId| order.iter().position(|&x| x == dag.find(g)).unwrap();
        assert!(pos(a) < pos(j));
        assert!(pos(b) < pos(j));
        assert!(pos(j) < pos(dag.root()));
        assert!(dag.group(a).topo < dag.group(j).topo);
    }

    #[test]
    fn parents_filter_dead_and_dedup() {
        let mut dag = Dag::empty(DagConfig::default());
        let (a, _, _) = dag.insert_expr(
            OpKind::Scan(TableId(0)),
            vec![],
            || props(10.0, 0),
            false,
            false,
        );
        let (b, _, _) = dag.insert_expr(
            OpKind::Scan(TableId(1)),
            vec![],
            || props(10.0, 1),
            false,
            false,
        );
        let p = Predicate::true_();
        let gx1 = dag.new_group(join_props(100.0, &[0, 1]));
        dag.insert_op(OpKind::Join(p.clone()), vec![a, b], Some(gx1), false, false);
        let gx2 = dag.new_group(join_props(100.0, &[0, 1]));
        dag.insert_op(OpKind::Join(p), vec![b, a], Some(gx2), false, false);
        dag.merge(gx1, gx2);
        // both leaf groups should report exactly the surviving parent ops
        for leaf in [a, b] {
            let ps = dag.parents_of(leaf);
            assert_eq!(ps.len(), 2, "two distinct join ops remain alive");
            assert!(ps.iter().all(|&o| dag.op(o).alive));
        }
    }
}
