//! Additional transformation-rule and unification scenarios: selections
//! through projections, subsumption chains, cyclic-derivation safety and
//! merge cascades across queries.

use mqo_catalog::Catalog;
use mqo_dag::{Dag, DagConfig, OpId, OpKind};
use mqo_expr::{Atom, CmpOp, Predicate};
use mqo_logical::{Batch, LogicalPlan, Query};

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    let _ = cat
        .table("r")
        .rows(10_000.0)
        .int_key("rk")
        .int_uniform("rv", 0, 99)
        .int_uniform("rw", 0, 9)
        .build();
    let _ = cat
        .table("s")
        .rows(20_000.0)
        .int_key("sk")
        .int_uniform("rfk", 0, 9_999)
        .build();
    cat
}

fn all_ops(dag: &Dag) -> Vec<OpId> {
    (0..dag.ops_allocated())
        .map(OpId::from_index)
        .filter(|&o| dag.op(o).alive)
        .collect()
}

#[test]
fn select_pushes_through_project() {
    let cat = catalog();
    let r = cat.table_by_name("r").unwrap().id;
    let rv = cat.col("r", "rv");
    let rk = cat.col("r", "rk");
    // σ_{rv<10}(Π_{rk,rv}(r)) must gain the commuted alternative
    // Π_{rk,rv}(σ_{rv<10}(r))
    let q = LogicalPlan::scan(r)
        .project(vec![rk, rv])
        .select(Predicate::atom(Atom::cmp(rv, CmpOp::Lt, 10i64)));
    let dag = Dag::expand(&Batch::single("q", q), &cat, DagConfig::default());
    let has_commuted = all_ops(&dag).iter().any(|&o| {
        matches!(&dag.op(o).kind, OpKind::Project(_))
            && dag.op_inputs(o).iter().any(|&i| {
                dag.group_ops(i)
                    .any(|oo| matches!(&dag.op(oo).kind, OpKind::Select(_)))
            })
    });
    assert!(has_commuted, "σ did not push through Π:\n{}", dag.dump());
}

#[test]
fn range_subsumption_chains_across_three_queries() {
    let cat = catalog();
    let r = cat.table_by_name("r").unwrap().id;
    let rv = cat.col("r", "rv");
    let mk = |b: i64| LogicalPlan::scan(r).select(Predicate::atom(Atom::cmp(rv, CmpOp::Ge, b)));
    let batch = Batch::of(vec![
        Query::new("a", mk(10)),
        Query::new("b", mk(40)),
        Query::new("c", mk(70)),
    ]);
    let dag = Dag::expand(&batch, &cat, DagConfig::default());
    // every stronger select must be derivable from at least one weaker one
    let derivations = all_ops(&dag)
        .iter()
        .filter(|&&o| dag.op(o).from_subsumption)
        .count();
    // σ≥40 from σ≥10, σ≥70 from σ≥10, σ≥70 from σ≥40
    assert_eq!(derivations, 3, "\n{}", dag.dump());
}

#[test]
fn equality_and_range_subsumption_coexist() {
    let cat = catalog();
    let r = cat.table_by_name("r").unwrap().id;
    let rv = cat.col("r", "rv");
    let batch = Batch::of(vec![
        Query::new(
            "e1",
            LogicalPlan::scan(r).select(Predicate::atom(Atom::cmp(rv, CmpOp::Eq, 5i64))),
        ),
        Query::new(
            "e2",
            LogicalPlan::scan(r).select(Predicate::atom(Atom::cmp(rv, CmpOp::Eq, 9i64))),
        ),
        Query::new(
            "w",
            LogicalPlan::scan(r).select(Predicate::atom(Atom::cmp(rv, CmpOp::Lt, 50i64))),
        ),
    ]);
    let dag = Dag::expand(&batch, &cat, DagConfig::default());
    // disjunction node σ_{rv=5 ∨ rv=9} must exist
    let has_disjunction = all_ops(&dag).iter().any(|&o| {
        matches!(&dag.op(o).kind, OpKind::Select(p) if p.as_eq_disjunction().map(|(_, vs)| vs.len()) == Some(2))
    });
    assert!(has_disjunction, "\n{}", dag.dump());
    // the equality selects are also derivable from the weak range select
    let eq_from_range = all_ops(&dag)
        .iter()
        .filter(|&&o| dag.op(o).from_subsumption)
        .count();
    assert!(
        eq_from_range >= 4,
        "derivations: {eq_from_range}\n{}",
        dag.dump()
    );
}

#[test]
fn no_cyclic_derivations_between_equivalent_predicates() {
    // σ_{rv≥10} twice (identical) should dedup into one group with no
    // derivation edges at all
    let cat = catalog();
    let r = cat.table_by_name("r").unwrap().id;
    let rv = cat.col("r", "rv");
    let mk = || LogicalPlan::scan(r).select(Predicate::atom(Atom::cmp(rv, CmpOp::Ge, 10i64)));
    let batch = Batch::of(vec![Query::new("a", mk()), Query::new("b", mk())]);
    let dag = Dag::expand(&batch, &cat, DagConfig::default());
    assert_eq!(
        all_ops(&dag)
            .iter()
            .filter(|&&o| dag.op(o).from_subsumption)
            .count(),
        0
    );
    // renumber (called inside expand) would have panicked on a cycle;
    // group count: scan + select + root
    assert_eq!(dag.num_groups(), 3, "\n{}", dag.dump());
}

#[test]
fn join_orders_unify_across_differently_written_queries() {
    let cat = catalog();
    let r = cat.table_by_name("r").unwrap().id;
    let s = cat.table_by_name("s").unwrap().id;
    let pred = Predicate::atom(Atom::eq_cols(cat.col("r", "rk"), cat.col("s", "rfk")));
    let q1 = LogicalPlan::scan(r).join(LogicalPlan::scan(s), pred.clone());
    let q2 = LogicalPlan::scan(s).join(LogicalPlan::scan(r), pred);
    let dag = Dag::expand(
        &Batch::of(vec![Query::new("q1", q1), Query::new("q2", q2)]),
        &cat,
        DagConfig::default(),
    );
    // r, s, r⋈s (unified across the two writings), root
    assert_eq!(dag.num_groups(), 4, "\n{}", dag.dump());
    let ins = dag.op_inputs(dag.root_op());
    assert_eq!(dag.find(ins[0]), dag.find(ins[1]));
}

#[test]
fn max_ops_safety_valve_halts_expansion() {
    let cat = catalog();
    let r = cat.table_by_name("r").unwrap().id;
    let s = cat.table_by_name("s").unwrap().id;
    let pred = Predicate::atom(Atom::eq_cols(cat.col("r", "rk"), cat.col("s", "rfk")));
    let q = LogicalPlan::scan(r).join(LogicalPlan::scan(s), pred);
    let cfg = DagConfig {
        max_ops: 4, // absurdly small: expansion must stop, not hang
        ..DagConfig::default()
    };
    let dag = Dag::expand(&Batch::single("q", q), &cat, cfg);
    assert!(dag.num_groups() >= 4); // initial plan still inserted
}

#[test]
fn projections_of_different_column_sets_stay_distinct() {
    let cat = catalog();
    let r = cat.table_by_name("r").unwrap().id;
    let rk = cat.col("r", "rk");
    let rv = cat.col("r", "rv");
    let q1 = LogicalPlan::scan(r).project(vec![rk]);
    let q2 = LogicalPlan::scan(r).project(vec![rk, rv]);
    let dag = Dag::expand(
        &Batch::of(vec![Query::new("q1", q1), Query::new("q2", q2)]),
        &cat,
        DagConfig::default(),
    );
    // scan + two distinct projections + root
    assert_eq!(dag.num_groups(), 4, "\n{}", dag.dump());
}
