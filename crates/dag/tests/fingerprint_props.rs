//! Property tests for the cross-batch fingerprint scheme.
//!
//! The fingerprint is the cache key `mqo-session` trusts across batches,
//! so the two invariants the unit tests spot-check must hold for *every*
//! chain-join workload, not just curated examples:
//!
//! * **Join-child permutation stability** — swapping the operands of any
//!   subset of joins describes the same logical result and must produce
//!   the same root fingerprint.
//! * **Node-id relabeling insensitivity** — group ids are arena indices
//!   that depend on expansion order; submitting the same queries in a
//!   different batch order relabels every id but must not move any
//!   query's root fingerprint.

use mqo_catalog::Catalog;
use mqo_dag::{group_fingerprints, Dag, DagConfig, Fingerprint};
use mqo_expr::{Atom, CmpOp, Predicate};
use mqo_logical::{Batch, LogicalPlan, Query};
use proptest::prelude::*;

const N_TABLES: usize = 6;

fn chain_catalog(rows: &[u32]) -> Catalog {
    let mut cat = Catalog::new();
    for (i, &r) in rows.iter().enumerate() {
        let _ = cat
            .table(&format!("c{i}"))
            .rows(f64::from(r))
            .int_key("p")
            .int_uniform("sp", 0, (i64::from(rows[(i + 1) % rows.len()]) - 1).max(0))
            .int_uniform("num", 0, 99)
            .clustered_on_first()
            .build();
    }
    cat
}

/// Left-deep chain join of `c{lo}..=c{hi}`; `swaps[k]` flips the operand
/// order of the k-th join.
fn chain_plan(cat: &Catalog, lo: usize, hi: usize, swaps: &[bool]) -> LogicalPlan {
    let mut plan = LogicalPlan::scan(cat.table_by_name(&format!("c{lo}")).unwrap().id);
    for (k, j) in (lo + 1..=hi).enumerate() {
        let pred = Predicate::atom(Atom::eq_cols(
            cat.col(&format!("c{}", j - 1), "sp"),
            cat.col(&format!("c{j}"), "p"),
        ));
        let t = LogicalPlan::scan(cat.table_by_name(&format!("c{j}")).unwrap().id);
        plan = if swaps.get(k).copied().unwrap_or(false) {
            t.join(plan, pred)
        } else {
            plan.join(t, pred)
        };
    }
    plan
}

/// Root fingerprint of each query in `batch`, in batch order.
fn root_fps(cat: &Catalog, batch: &Batch) -> Vec<Fingerprint> {
    let dag = Dag::expand(batch, cat, DagConfig::default());
    let fps = group_fingerprints(&dag);
    dag.op_inputs(dag.root_op())
        .iter()
        .map(|g| fps[g])
        .collect()
}

proptest! {
    #[test]
    fn join_child_permutation_does_not_change_fingerprint(
        hi in 2usize..N_TABLES,
        rows in prop::collection::vec(100u32..2_000, N_TABLES),
        swaps in prop::collection::vec(any::<bool>(), N_TABLES - 1),
    ) {
        let cat = chain_catalog(&rows);
        let base = chain_plan(&cat, 0, hi, &[]);
        let perm = chain_plan(&cat, 0, hi, &swaps);
        prop_assert_eq!(
            root_fps(&cat, &Batch::single("q", base)),
            root_fps(&cat, &Batch::single("q", perm)),
            "swapping join operands moved the root fingerprint"
        );
    }

    #[test]
    fn node_id_relabeling_is_invisible(
        rows in prop::collection::vec(200u32..2_000, N_TABLES),
        spans in prop::collection::vec((0usize..4, 2usize..5, 0i64..90), 2..5),
    ) {
        let cat = chain_catalog(&rows);
        let queries: Vec<Query> = spans
            .iter()
            .enumerate()
            .map(|(qi, &(lo, len, bound))| {
                let lo = lo.min(N_TABLES - 2);
                let hi = (lo + len.max(1)).min(N_TABLES - 1);
                let plan = chain_plan(&cat, lo, hi, &[]).select(Predicate::atom(Atom::cmp(
                    cat.col(&format!("c{lo}"), "num"),
                    CmpOp::Ge,
                    bound,
                )));
                Query::new(format!("q{qi}"), plan)
            })
            .collect();
        let forward = Batch::of(queries.clone());
        let reversed = Batch::of(queries.into_iter().rev().collect());
        // reversing the batch renumbers every group and op id, but each
        // query keeps its fingerprint
        let mut fwd = root_fps(&cat, &forward);
        fwd.reverse();
        prop_assert_eq!(
            fwd,
            root_fps(&cat, &reversed),
            "batch order (id numbering) leaked into the fingerprint"
        );
    }
}
