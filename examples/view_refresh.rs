//! Materialized-view refresh — one of the paper's motivating scenarios
//! (§1): "the task of updating a set of related materialized views also
//! generates related queries with common sub-expressions [RSS96]".
//!
//! Three summary views over the same fact table are refreshed together:
//! daily revenue, revenue by store, and revenue by item category. All
//! three aggregate the same join of the day's delta with its dimensions;
//! multi-query optimization computes that join once.
//!
//! Run with: `cargo run --release --example view_refresh`

use mqo::catalog::{Catalog, ColStats, ColType};
use mqo::core::Optimizer;
use mqo::expr::{AggExpr, AggFunc, Atom, CmpOp, Predicate, ScalarExpr};
use mqo::logical::{Batch, LogicalPlan, Query};

fn main() {
    let mut cat = Catalog::new();
    let store = cat
        .table("store")
        .rows(1_000.0)
        .int_key("st_key")
        .int_uniform("st_region", 0, 19)
        .clustered_on_first()
        .build();
    let item = cat
        .table("item")
        .rows(50_000.0)
        .int_key("it_key")
        .int_uniform("it_cat", 0, 99)
        .clustered_on_first()
        .build();
    let sales = cat
        .table("sales_delta")
        .rows(2_000_000.0)
        .int_key("sa_key")
        .int_uniform("sa_store", 0, 999)
        .int_uniform("sa_item", 0, 49_999)
        .int_uniform("sa_day", 0, 6)
        .column(
            "sa_amount",
            ColType::Float,
            ColStats::uniform_float(1.0, 500.0, 10_000.0),
        )
        .clustered_on_first()
        .build();

    let rev_day = cat.derived_column("rev_day", ColType::Float, ColStats::opaque(7.0));
    let rev_store = cat.derived_column("rev_store", ColType::Float, ColStats::opaque(1_000.0));
    let rev_cat = cat.derived_column("rev_cat", ColType::Float, ColStats::opaque(100.0));

    // The shared refresh input: this week's delta joined with both
    // dimensions, restricted to the latest day.
    let delta = LogicalPlan::scan(sales)
        .select(Predicate::atom(Atom::cmp(
            cat.col("sales_delta", "sa_day"),
            CmpOp::Eq,
            6i64,
        )))
        .join(
            LogicalPlan::scan(store),
            Predicate::atom(Atom::eq_cols(
                cat.col("sales_delta", "sa_store"),
                cat.col("store", "st_key"),
            )),
        )
        .join(
            LogicalPlan::scan(item),
            Predicate::atom(Atom::eq_cols(
                cat.col("sales_delta", "sa_item"),
                cat.col("item", "it_key"),
            )),
        );
    let amount = ScalarExpr::col(cat.col("sales_delta", "sa_amount"));

    let refresh_daily = delta.clone().aggregate(
        vec![cat.col("sales_delta", "sa_day")],
        vec![AggExpr::new(AggFunc::Sum, amount.clone(), rev_day)],
    );
    let refresh_by_store = delta.clone().aggregate(
        vec![cat.col("store", "st_region")],
        vec![AggExpr::new(AggFunc::Sum, amount.clone(), rev_store)],
    );
    let refresh_by_category = delta.aggregate(
        vec![cat.col("item", "it_cat")],
        vec![AggExpr::new(AggFunc::Sum, amount, rev_cat)],
    );
    let batch = Batch::of(vec![
        Query::new("refresh daily_revenue", refresh_daily),
        Query::new("refresh revenue_by_store", refresh_by_store),
        Query::new("refresh revenue_by_category", refresh_by_category),
    ]);

    // One session, one expanded DAG, both strategies.
    let optimizer = Optimizer::new(&cat);
    let ctx = optimizer.prepare(&batch);
    let volcano = optimizer.search(&ctx, "Volcano").unwrap();
    let greedy = optimizer.search(&ctx, "Greedy").unwrap();
    println!("refreshing 3 materialized views over one sales delta\n");
    println!("independent refresh (Volcano): {}", volcano.cost);
    println!("shared refresh (Greedy):       {}", greedy.cost);
    println!(
        "saved {:.0}% by computing the delta join once\n",
        100.0 * (1.0 - greedy.cost.secs() / volcano.cost.secs())
    );
    for &m in &greedy.plan.materialized {
        let n = ctx.pdag.node(m);
        println!(
            "shared intermediate: group g{} ({} rows, {} blocks, {})",
            n.group, n.rows as u64, n.blocks as u64, n.prop
        );
    }
}
