//! Nested-query optimization (paper §5): a correlated subquery is modeled
//! as a weight-`n` parameterized query; the optimizer materializes the
//! *invariant* part once — with a sort order that doubles as a temporary
//! index for the per-invocation probe — instead of recomputing the join
//! per invocation.
//!
//! This is the paper's TPC-D Q2 experiment, including the `not in`
//! variant where decorrelation is impossible and invariant
//! materialization is the only rescue (§6.1 reports ≈9× there).
//!
//! Run with: `cargo run --release --example nested_query`

use mqo::core::Optimizer;
use mqo::physical::PhysProp;
use mqo::workloads::Tpcd;

fn main() {
    let w = Tpcd::new(1.0);
    let optimizer = Optimizer::new(&w.catalog);

    for (name, batch) in [
        ("Q2 (correlated, =)", w.q2()),
        ("Q2 (`not in`, <>)", w.q2_notin()),
    ] {
        let ctx = optimizer.prepare(&batch); // one DAG per batch
        let volcano = optimizer.search(&ctx, "Volcano").unwrap();
        let greedy = optimizer.search(&ctx, "Greedy").unwrap();
        println!("=== {name} ===");
        println!(
            "  inner subquery invoked {}x (weight of the parameterized query)",
            batch.queries[1].weight
        );
        println!(
            "  Volcano: {}   Greedy: {}   ({:.1}x)",
            volcano.cost,
            greedy.cost,
            volcano.cost.secs() / greedy.cost.secs()
        );
        for &m in &greedy.plan.materialized {
            let node = ctx.pdag.node(m);
            let sorted = !matches!(node.prop, PhysProp::Any);
            println!(
                "  materialized invariant: group g{} as {}{}",
                node.group,
                node.prop,
                if sorted {
                    " (acts as a temporary clustered index for the correlation probe)"
                } else {
                    ""
                }
            );
        }
        println!();
    }
    println!("note: parameter-dependent subexpressions are never materialized —");
    println!("sharability excludes nodes whose result depends on a correlation variable.");
}
