//! Steady-state serving: one long-lived `MqoSession`, three overlapping
//! TPC-D batches.
//!
//! Batch `i` of the serving stream holds the component pairs `i` and
//! `i+1` of the paper's Experiment-2 pool, so each batch shares one
//! whole pair with its predecessor. The first batch runs cold; from the
//! second on, the session's `MvStore` serves the overlapping
//! subexpressions warm — the optimizer seeds them into the search at
//! reuse cost and the executor reads them zero-copy. Watch the per-batch
//! cost, wall time, and cache hits: overlap turns directly into work
//! not done. A final re-submit of the first batch shows the fully warm
//! steady state.
//!
//! Run with: `cargo run --release --example serving_session`

use mqo::exec::generate_database;
use mqo::session::{MqoSession, SessionOptions};
use mqo::workloads::Tpcd;

fn main() {
    let scale = 0.004;
    let w = Tpcd::new(scale);
    let mut batches = w.serving_batches(3);
    batches.push(w.serving_batches(1).remove(0)); // batch 0 again, now warm

    println!("generating TPC-D data at scale {scale}…");
    let db = generate_database(&w.catalog, 42, usize::MAX);
    let mut session = MqoSession::new(w.catalog, db, SessionOptions::new());

    println!(
        "{:<22} {:>10} {:>9} {:>6} {:>6} {:>7} {:>7}",
        "batch", "est cost", "exec", "temps", "hits", "admit", "evict"
    );
    for (i, batch) in batches.iter().enumerate() {
        let label = if i == 3 {
            "batch 0 (resubmitted)".to_string()
        } else {
            format!("batch {i} ({} queries)", batch.len())
        };
        let r = session.submit(batch).expect("Greedy is registered");
        println!(
            "{:<22} {:>10} {:>7.1}ms {:>6} {:>6} {:>7} {:>7}",
            label,
            format!("{}", r.cost),
            r.exec_wall.as_secs_f64() * 1e3,
            r.temps_built,
            r.cache_hits,
            r.admitted,
            r.evicted
        );
    }

    let s = session.stats();
    println!(
        "\nsession: {} batches, {} queries | cache {} entries, {:.1} MiB / {:.0} MiB budget",
        s.batches,
        s.queries,
        s.mv_entries,
        s.mv_bytes_used as f64 / (1 << 20) as f64,
        s.mv_budget_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "         {} warm hits, {} temps built | est cost Σ {:.2}s, opt Σ {:.0}ms, exec Σ {:.0}ms",
        s.cache_hits,
        s.temps_built,
        s.est_cost_secs,
        s.opt_secs * 1e3,
        s.exec_secs * 1e3
    );
    assert!(s.cache_hits > 0, "overlapping batches must hit the cache");
}
