//! Quickstart: the paper's Example 1.1, on the staged `Optimizer`
//! session API.
//!
//! Q1 = (R ⋈ S) ⋈ P and Q2 = (R ⋈ T) ⋈ S. The individually optimal plans
//! share nothing; a multi-query optimizer may pick the *locally
//! suboptimal* plan (R ⋈ S) ⋈ T for Q2 so that R ⋈ S can be computed
//! once, materialized, and reused. The session prepares the shared
//! AND-OR DAG once and both strategies search it.
//!
//! Run with: `cargo run --release --example quickstart`

use mqo::catalog::Catalog;
use mqo::core::Optimizer;
use mqo::expr::{Atom, Predicate};
use mqo::logical::{Batch, LogicalPlan, Query};

fn main() {
    // --- Schema: four relations with pairwise join columns -------------
    let mut cat = Catalog::new();
    for name in ["r", "s", "t", "p"] {
        let _ = cat
            .table(name)
            .rows(1_000_000.0)
            .int_key(&format!("{name}k"))
            .int_uniform(&format!("{name}v"), 0, 999_999)
            .int_uniform(&format!("{name}f"), 0, 99)
            .clustered_on_first()
            .build();
    }
    let rs = Predicate::atom(Atom::eq_cols(cat.col("r", "rv"), cat.col("s", "sk")));
    let rt = Predicate::atom(Atom::eq_cols(cat.col("r", "rk"), cat.col("t", "tv")));
    let sp = Predicate::atom(Atom::eq_cols(cat.col("s", "sv"), cat.col("p", "pk")));
    let scan = |n: &str| LogicalPlan::scan(cat.table_by_name(n).unwrap().id);
    // Both queries filter R the same way — σ(R) ⋈ S is the (small,
    // expensive-to-recompute) candidate for sharing.
    let r_sel = || {
        scan("r").select(Predicate::atom(Atom::cmp(
            cat.col("r", "rf"),
            mqo::expr::CmpOp::Eq,
            7i64,
        )))
    };

    // --- The two queries of Example 1.1 --------------------------------
    let q1 = r_sel().join(scan("s"), rs.clone()).join(scan("p"), sp);
    let q2 = r_sel().join(scan("t"), rt).join(scan("s"), rs);
    let batch = Batch::of(vec![Query::new("Q1", q1), Query::new("Q2", q2)]);

    // --- One session, one expanded DAG, two strategies -----------------
    let optimizer = Optimizer::new(&cat);
    let ctx = optimizer.prepare(&batch); // expand + physicalize ONCE
    let volcano = optimizer.search(&ctx, "Volcano").unwrap();
    let greedy = optimizer.search(&ctx, "Greedy").unwrap();

    println!("Example 1.1 — two queries with a hidden common subexpression\n");
    println!(
        "DAG prepared once in {:.1} ms, searched by both strategies",
        ctx.dag_time_secs * 1e3
    );
    println!("Volcano (no sharing):   estimated cost {}", volcano.cost);
    println!("Greedy  (MQO):          estimated cost {}", greedy.cost);
    println!(
        "benefit: {:.1}% ({} materialized intermediate result(s))\n",
        100.0 * (1.0 - greedy.cost.secs() / volcano.cost.secs()),
        greedy.stats.materialized
    );

    // Plans and context came from the same session: explain directly.
    println!("--- Greedy's shared plan ---");
    println!("{}", greedy.plan.explain(&ctx.pdag, &cat));
    println!("--- Volcano's independent plans ---");
    println!("{}", volcano.plan.explain(&ctx.pdag, &cat));
}
