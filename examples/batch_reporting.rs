//! Batch reporting: optimize a batch of TPC-D-like reporting queries (the
//! paper's Experiment 2 workload) with every registered strategy and
//! compare — including the KS15 bi-directional greedy, which plugs into
//! the session through the public `Strategy` registry rather than any
//! built-in dispatch.
//!
//! This example also shows the session's parallel side: a curated
//! registry (`Optimizer::with_registry`, dropping the slow Exhaustive
//! oracle) searched by every strategy concurrently over one shared DAG
//! (`Optimizer::search_all_parallel`), with the greedy probe loops
//! themselves parallelized under `Options::threads`. Results are
//! identical at any thread count.
//!
//! Run with: `cargo run --release --example batch_reporting`

use mqo::core::{Optimizer, Options, Registry};
use mqo::ks15::Ks15Greedy;
use mqo::workloads::Tpcd;
use std::sync::Arc;

fn main() {
    let w = Tpcd::new(1.0);
    let batch = w.bq(3); // Q3, Q5, Q7 — each at two selection constants

    // A curated registry: the built-ins minus the Exhaustive oracle
    // (too slow at this size), plus KS15 through the extension point.
    let mut registry = Registry::empty();
    for s in Registry::builtin().iter() {
        if s.name() != "Exhaustive" {
            registry.register(Arc::clone(s)).unwrap();
        }
    }
    registry.register(Arc::new(Ks15Greedy)).unwrap();

    // threads = 0 means auto: MQO_THREADS or the machine's parallelism.
    let optimizer = Optimizer::with_registry(&w.catalog, Options::new().with_threads(0), registry);

    // One expanded DAG, searched by every registered strategy at once.
    let ctx = optimizer.prepare(&batch);
    println!(
        "batch of {} queries over the TPC-D-like schema (scale 1)",
        batch.len()
    );
    println!(
        "DAG prepared once in {:.2} ms, searched concurrently by {} strategies\n",
        ctx.dag_time_secs * 1e3,
        optimizer.registry().len()
    );
    let results = optimizer
        .search_all_parallel(&ctx)
        .expect("built-in searches are fault-free here");

    println!(
        "{:<12} {:>14} {:>12} {:>8} {:>12}",
        "strategy", "est. cost [s]", "search [ms]", "temps", "vs Volcano"
    );
    let base = results[0].1.cost.secs(); // registration order: Volcano first
    for (name, r) in &results {
        println!(
            "{:<12} {:>14.2} {:>12.2} {:>8} {:>11.1}%",
            name,
            r.cost.secs(),
            r.stats.search_time_secs * 1e3,
            r.stats.materialized,
            100.0 * (1.0 - r.cost.secs() / base)
        );
    }

    // Show what Greedy decided to share (same context — no rebuild).
    let greedy = &results
        .iter()
        .find(|(name, _)| name == "Greedy")
        .expect("Greedy is registered")
        .1;
    println!(
        "\nGreedy materializes {} result(s):",
        greedy.plan.materialized.len()
    );
    for &m in &greedy.plan.materialized {
        let node = ctx.pdag.node(m);
        let group = ctx.dag.group(node.group);
        println!(
            "  group g{} ({} rows, {} blocks) with property {}",
            node.group, group.rows as u64, node.blocks as u64, node.prop
        );
    }
}
