//! Batch reporting: optimize a batch of TPC-D-like reporting queries (the
//! paper's Experiment 2 workload) with all four algorithms and compare.
//!
//! Run with: `cargo run --release --example batch_reporting`

use mqo::core::{optimize, Algorithm, OptContext, Options};
use mqo::workloads::Tpcd;

fn main() {
    let w = Tpcd::new(1.0);
    let batch = w.bq(3); // Q3, Q5, Q7 — each at two selection constants
    let opts = Options::new();

    println!(
        "batch of {} queries over the TPC-D-like schema (scale 1)\n",
        batch.len()
    );
    println!(
        "{:<12} {:>14} {:>12} {:>8} {:>12}",
        "algorithm", "est. cost [s]", "opt [ms]", "temps", "vs Volcano"
    );
    let mut base = None;
    for alg in Algorithm::ALL {
        let r = optimize(&batch, &w.catalog, alg, &opts);
        let b = *base.get_or_insert(r.cost.secs());
        println!(
            "{:<12} {:>14.2} {:>12.2} {:>8} {:>11.1}%",
            alg.name(),
            r.cost.secs(),
            r.stats.opt_time_secs * 1e3,
            r.stats.materialized,
            100.0 * (1.0 - r.cost.secs() / b)
        );
    }

    // Show what Greedy decided to share.
    let greedy = optimize(&batch, &w.catalog, Algorithm::Greedy, &opts);
    let ctx = OptContext::build(&batch, &w.catalog, &opts);
    println!(
        "\nGreedy materializes {} result(s):",
        greedy.plan.materialized.len()
    );
    for &m in &greedy.plan.materialized {
        let node = ctx.pdag.node(m);
        let group = ctx.dag.group(node.group);
        println!(
            "  group g{} ({} rows, {} blocks) with property {}",
            node.group, group.rows as u64, node.blocks as u64, node.prop
        );
    }
}
