//! Batch reporting: optimize a batch of TPC-D-like reporting queries (the
//! paper's Experiment 2 workload) with every registered strategy and
//! compare — including the KS15 bi-directional greedy, which plugs into
//! the session through the public `Strategy` registry rather than any
//! built-in dispatch.
//!
//! Run with: `cargo run --release --example batch_reporting`

use mqo::core::Optimizer;
use mqo::ks15::Ks15Greedy;
use mqo::workloads::Tpcd;
use std::sync::Arc;

fn main() {
    let w = Tpcd::new(1.0);
    let batch = w.bq(3); // Q3, Q5, Q7 — each at two selection constants

    // The extension point: KS15 registers like any built-in.
    let mut optimizer = Optimizer::new(&w.catalog);
    optimizer.register(Arc::new(Ks15Greedy)).unwrap();

    // One expanded DAG, searched by every registered strategy.
    let ctx = optimizer.prepare(&batch);
    println!(
        "batch of {} queries over the TPC-D-like schema (scale 1)",
        batch.len()
    );
    println!(
        "DAG prepared once in {:.2} ms, shared by {} strategies\n",
        ctx.dag_time_secs * 1e3,
        optimizer.registry().len()
    );
    println!(
        "{:<12} {:>14} {:>12} {:>8} {:>12}",
        "strategy", "est. cost [s]", "search [ms]", "temps", "vs Volcano"
    );
    let names: Vec<String> = optimizer
        .registry()
        .names()
        .filter(|&n| n != "Exhaustive") // oracle: too slow at this size
        .map(String::from)
        .collect();
    let mut base = None;
    for name in &names {
        let r = optimizer.search(&ctx, name).unwrap();
        let b = *base.get_or_insert(r.cost.secs());
        println!(
            "{:<12} {:>14.2} {:>12.2} {:>8} {:>11.1}%",
            name,
            r.cost.secs(),
            r.stats.search_time_secs * 1e3,
            r.stats.materialized,
            100.0 * (1.0 - r.cost.secs() / b)
        );
    }

    // Show what Greedy decided to share (same context — no rebuild).
    let greedy = optimizer.search(&ctx, "Greedy").unwrap();
    println!(
        "\nGreedy materializes {} result(s):",
        greedy.plan.materialized.len()
    );
    for &m in &greedy.plan.materialized {
        let node = ctx.pdag.node(m);
        let group = ctx.dag.group(node.group);
        println!(
            "  group g{} ({} rows, {} blocks) with property {}",
            node.group, group.rows as u64, node.blocks as u64, node.prop
        );
    }
}
