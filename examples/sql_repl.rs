//! A thin SQL REPL over `MqoSession`: type `;`-terminated SELECTs, then
//! `go;` to optimize and execute everything typed since the last `go;`
//! as ONE multi-query batch. Statements in a batch share optimizer DAG
//! structure and warm `MvStore` results exactly like hand-built
//! batches, so resubmitting overlapping queries shows cache hits.
//!
//! Commands (each on its own line):
//!   go;            submit the accumulated statements as a batch
//!   stats;         print cumulative session statistics
//!   quit; / exit;  leave (EOF submits any remainder first)
//!
//! Errors never kill the loop: parse, plan, and submit failures are
//! rendered (caret diagnostics for anything with a source span) and the
//! session keeps serving the next statement. In piped (non-interactive)
//! mode the process still runs the whole script, then exits nonzero at
//! the end if any statement failed — so CI catches regressions without
//! a single typo truncating the run.
//!
//! Serving modes (the `mqo-serve` front over the same pipeline):
//!   --serve ADDR     run a multi-tenant TCP server on ADDR (port 0
//!                    picks a free port; the bound address prints to
//!                    stdout). The server runs until stdin closes or a
//!                    `quit` line arrives.
//!   --connect ADDR   run the same REPL against a remote server; each
//!                    `go;` batch travels the wire and results come
//!                    back bit-exact. `--tenant NAME` picks the lane.
//!
//! Run with: `cargo run --release --example sql_repl [--scale S] [--seed N]`
//! or pipe a script: `cargo run --release --example sql_repl < examples/repl_demo.sql`

use std::io::{BufRead, IsTerminal, Write};
use std::time::Duration;

use mqo::exec::generate_database;
use mqo::serve::{Client, QueryResult, ServeFront, ServeOptions, Server};
use mqo::session::{BatchResult, MqoSession, SessionOptions};
use mqo::sql::{apply_order, to_batch, PlannedQuery, SqlPlanner};
use mqo::workloads::Tpcd;

/// What `go;` talks to: an in-process session or a remote serving front.
enum Backend {
    Local {
        // Boxed so the enum isn't session-sized when it holds the
        // 32-byte Remote variant.
        session: Box<MqoSession>,
        planner: SqlPlanner,
    },
    Remote {
        client: Client,
    },
}

impl Backend {
    fn run_batch(&mut self, sql: &str, had_error: &mut bool) {
        match self {
            Backend::Local { session, planner } => run_local(session, planner, sql, had_error),
            Backend::Remote { client } => match client.query(sql) {
                Ok(results) => {
                    println!("batch: {} queries (remote)", results.len());
                    for r in &results {
                        print_result(r);
                    }
                }
                Err(e) => fail(&e.render(), had_error),
            },
        }
    }

    fn print_stats(&mut self) {
        match self {
            Backend::Local { session, .. } => print_stats(session),
            Backend::Remote { client } => match client.stats() {
                Ok(pairs) => {
                    for (name, value) in pairs {
                        println!("  {name}: {value}");
                    }
                }
                Err(e) => eprintln!("{}", e.render()),
            },
        }
    }
}

fn main() {
    let mut scale = 0.002f64;
    let mut seed = 42u64;
    let mut serve: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut tenant = "repl".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--serve" => serve = args.next(),
            "--connect" => connect = args.next(),
            "--tenant" => tenant = args.next().unwrap_or(tenant),
            other => {
                eprintln!(
                    "unknown argument `{other}` \
                     (expected --scale, --seed, --serve, --connect, or --tenant)"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(addr) = serve {
        run_server(&addr, scale, seed);
        return;
    }

    let interactive = std::io::stdin().is_terminal();
    let mut backend = match connect {
        Some(addr) => {
            let client = match Client::connect_retry(&addr, &tenant, 20, Duration::from_millis(250))
            {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{}", e.render());
                    std::process::exit(1);
                }
            };
            eprintln!("{}", client.banner());
            Backend::Remote { client }
        }
        None => {
            let w = Tpcd::new(scale);
            eprintln!("generating TPC-D data at scale {scale} (seed {seed})…");
            let db = generate_database(&w.catalog, seed, usize::MAX);
            Backend::Local {
                session: Box::new(MqoSession::new(w.catalog, db, SessionOptions::new())),
                planner: SqlPlanner::new(),
            }
        }
    };

    if interactive {
        eprintln!("tables: nation region supplier partsupp part lineitem orders customer");
        eprintln!("end statements with `;`, then `go;` to run the batch; `stats;`, `quit;`");
    }

    let mut pending = String::new(); // complete statements awaiting `go;`
    let mut buffer = String::new(); // lines of the statement being typed
    let mut had_error = false; // any failure so far (piped exit code)
    let stdin = std::io::stdin();
    loop {
        if interactive {
            let prompt = if buffer.trim().is_empty() {
                "mqo> "
            } else {
                "...> "
            };
            eprint!("{prompt}");
            std::io::stderr().flush().ok();
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            // EOF: run whatever is left, then stop.
            if !buffer.trim().is_empty() {
                fail(
                    &format!("unterminated statement at EOF: {}", buffer.trim()),
                    &mut had_error,
                );
            }
            if !pending.trim().is_empty() {
                backend.run_batch(&pending, &mut had_error);
            }
            break;
        }
        match line.trim().to_ascii_lowercase().as_str() {
            "go;" | "go" => {
                if !buffer.trim().is_empty() {
                    fail(
                        &format!("unterminated statement before go;: {}", buffer.trim()),
                        &mut had_error,
                    );
                    buffer.clear();
                }
                if pending.trim().is_empty() {
                    if interactive {
                        eprintln!("nothing to run — type a statement first");
                    }
                } else {
                    backend.run_batch(&pending, &mut had_error);
                    pending.clear();
                }
                continue;
            }
            "stats;" | "stats" => {
                backend.print_stats();
                continue;
            }
            "quit;" | "exit;" | "quit" | "exit" => break,
            _ => {}
        }
        buffer.push_str(&line);
        if buffer.trim_end().ends_with(';') {
            // Statement complete: check it parses now so errors point at
            // text the user just typed, then queue it for `go;`.
            match mqo::sql::parse_statements(&buffer) {
                Ok(_) => pending.push_str(&buffer),
                Err(e) => fail(&e.render(&buffer), &mut had_error),
            }
            buffer.clear();
        }
    }
    if had_error && !interactive {
        std::process::exit(1);
    }
}

/// `--serve`: a multi-tenant TCP front over freshly generated TPC-D
/// data. Prints the bound address to stdout (scripts bind port 0 and
/// read it back), then blocks until stdin closes or `quit` arrives, so
/// a driving script holds the server open exactly as long as needed.
fn run_server(addr: &str, scale: f64, seed: u64) {
    let w = Tpcd::new(scale);
    eprintln!("generating TPC-D data at scale {scale} (seed {seed})…");
    let db = generate_database(&w.catalog, seed, usize::MAX);
    let front = ServeFront::new(w.catalog, db, ServeOptions::new());
    let mut server = match Server::start(front, addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}", e.render());
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().ok();

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) if matches!(line.trim(), "quit" | "quit;" | "exit" | "exit;") => break,
            Ok(_) => {}
        }
    }
    let (totals, tenants) = server.front().stats();
    eprintln!(
        "served {} batches / {} queries for {} tenants | {} cache hits, {} temps built",
        totals.batches,
        totals.queries,
        tenants.len(),
        totals.cache_hits,
        totals.temps_built
    );
    server.shutdown();
}

/// Plans `sql` as one batch, submits it, and prints per-query results.
/// Every failure is recoverable: the error renders and the session
/// keeps serving (a failed submit rolled its cache changes back).
fn run_local(session: &mut MqoSession, planner: &mut SqlPlanner, sql: &str, had_error: &mut bool) {
    let planned = match planner.plan_text(session.catalog_mut(), sql) {
        Ok(p) => p,
        Err(e) => return fail(&e.render(sql), had_error),
    };
    let batch = to_batch(&planned);
    let r = match session.submit(&batch) {
        Ok(r) => r,
        Err(e) => return fail(&e.render(), had_error),
    };
    if r.degraded {
        eprintln!("warning: budget expired — best-so-far plan, aborted queries return no rows");
    }
    for (pq, err) in planned.iter().zip(&r.query_errors) {
        if let Some(e) = err {
            eprintln!("-- {}: aborted: {e}", pq.label);
        }
    }
    print_batch(session, &planned, &r);
}

fn print_batch(session: &MqoSession, planned: &[PlannedQuery], r: &BatchResult) {
    println!(
        "batch: {} queries | est cost {} | exec {:.1}ms | {} temps, {} cache hits",
        planned.len(),
        r.cost,
        r.exec_wall.as_secs_f64() * 1e3,
        r.temps_built,
        r.cache_hits
    );
    for (pq, table) in planned.iter().zip(&r.results) {
        let table = if pq.order_by.is_empty() {
            table.clone()
        } else {
            apply_order(table, &pq.order_by)
        };
        let names: Vec<&str> = table
            .schema
            .iter()
            .map(|&c| session.catalog().column(c).name.as_str())
            .collect();
        println!(
            "-- {}: {} rows [{}]",
            pq.label,
            table.len(),
            names.join(", ")
        );
        const SHOW: usize = 10;
        for i in 0..table.len().min(SHOW) {
            let row: Vec<String> = table.row(i).iter().map(|v| v.to_string()).collect();
            println!("   {}", row.join(" | "));
        }
        if table.len() > SHOW {
            println!("   … {} more", table.len() - SHOW);
        }
    }
}

/// Prints one wire result in the same shape `print_batch` uses.
fn print_result(r: &QueryResult) {
    println!(
        "-- {}: {} rows [{}]",
        r.label,
        r.rows.len(),
        r.columns.join(", ")
    );
    const SHOW: usize = 10;
    for row in r.rows.iter().take(SHOW) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("   {}", cells.join(" | "));
    }
    if r.rows.len() > SHOW {
        println!("   … {} more", r.rows.len() - SHOW);
    }
}

fn print_stats(session: &MqoSession) {
    let s = session.stats();
    println!(
        "session: {} batches, {} queries | {} cache hits, {} temps built",
        s.batches, s.queries, s.cache_hits, s.temps_built
    );
    println!(
        "  mv cache: {} entries, {:.1} KiB / {:.0} KiB budget",
        s.mv_entries,
        s.mv_bytes_used as f64 / 1024.0,
        s.mv_budget_bytes as f64 / 1024.0
    );
    println!(
        "  est cost Σ {:.3}s | opt Σ {:.1}ms | exec Σ {:.1}ms",
        s.est_cost_secs,
        s.opt_secs * 1e3,
        s.exec_secs * 1e3
    );
    println!(
        "  robustness: {} degraded ({} expiries, {} query aborts) | {} failed / {} rolled back | {} env fallbacks",
        s.degraded_submits,
        s.budget_expiries,
        s.query_aborts,
        s.failed_submits,
        s.rolled_back,
        s.env_fallbacks
    );
}

/// Renders the error and records it; the loop always keeps going (a
/// piped run exits nonzero at the very end instead of mid-script).
fn fail(msg: &str, had_error: &mut bool) {
    eprintln!("{msg}");
    *had_error = true;
}
