//! A thin SQL REPL over `MqoSession`: type `;`-terminated SELECTs, then
//! `go;` to optimize and execute everything typed since the last `go;`
//! as ONE multi-query batch. Statements in a batch share optimizer DAG
//! structure and warm `MvStore` results exactly like hand-built
//! batches, so resubmitting overlapping queries shows cache hits.
//!
//! Commands (each on its own line):
//!   go;            submit the accumulated statements as a batch
//!   stats;         print cumulative session statistics
//!   quit; / exit;  leave (EOF submits any remainder first)
//!
//! Errors never kill the loop: parse, plan, and submit failures are
//! rendered (caret diagnostics for anything with a source span) and the
//! session keeps serving the next statement. In piped (non-interactive)
//! mode the process still runs the whole script, then exits nonzero at
//! the end if any statement failed — so CI catches regressions without
//! a single typo truncating the run.
//!
//! Run with: `cargo run --release --example sql_repl [--scale S] [--seed N]`
//! or pipe a script: `cargo run --release --example sql_repl < examples/repl_demo.sql`

use std::io::{BufRead, IsTerminal, Write};

use mqo::exec::generate_database;
use mqo::session::{BatchResult, MqoSession, SessionOptions};
use mqo::sql::{apply_order, to_batch, PlannedQuery, SqlPlanner};
use mqo::workloads::Tpcd;

fn main() {
    let mut scale = 0.002f64;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            other => {
                eprintln!("unknown argument `{other}` (expected --scale or --seed)");
                std::process::exit(2);
            }
        }
    }

    let interactive = std::io::stdin().is_terminal();
    let w = Tpcd::new(scale);
    eprintln!("generating TPC-D data at scale {scale} (seed {seed})…");
    let db = generate_database(&w.catalog, seed, usize::MAX);
    let mut session = MqoSession::new(w.catalog, db, SessionOptions::new());
    let mut planner = SqlPlanner::new();

    if interactive {
        eprintln!("tables: nation region supplier partsupp part lineitem orders customer");
        eprintln!("end statements with `;`, then `go;` to run the batch; `stats;`, `quit;`");
    }

    let mut pending = String::new(); // complete statements awaiting `go;`
    let mut buffer = String::new(); // lines of the statement being typed
    let mut had_error = false; // any failure so far (piped exit code)
    let stdin = std::io::stdin();
    loop {
        if interactive {
            let prompt = if buffer.trim().is_empty() {
                "mqo> "
            } else {
                "...> "
            };
            eprint!("{prompt}");
            std::io::stderr().flush().ok();
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            // EOF: run whatever is left, then stop.
            if !buffer.trim().is_empty() {
                fail(
                    &format!("unterminated statement at EOF: {}", buffer.trim()),
                    &mut had_error,
                );
            }
            if !pending.trim().is_empty() {
                run_batch(&mut session, &mut planner, &pending, &mut had_error);
            }
            break;
        }
        match line.trim().to_ascii_lowercase().as_str() {
            "go;" | "go" => {
                if !buffer.trim().is_empty() {
                    fail(
                        &format!("unterminated statement before go;: {}", buffer.trim()),
                        &mut had_error,
                    );
                    buffer.clear();
                }
                if pending.trim().is_empty() {
                    if interactive {
                        eprintln!("nothing to run — type a statement first");
                    }
                } else {
                    run_batch(&mut session, &mut planner, &pending, &mut had_error);
                    pending.clear();
                }
                continue;
            }
            "stats;" | "stats" => {
                print_stats(&session);
                continue;
            }
            "quit;" | "exit;" | "quit" | "exit" => break,
            _ => {}
        }
        buffer.push_str(&line);
        if buffer.trim_end().ends_with(';') {
            // Statement complete: check it parses now so errors point at
            // text the user just typed, then queue it for `go;`.
            match mqo::sql::parse_statements(&buffer) {
                Ok(_) => pending.push_str(&buffer),
                Err(e) => fail(&e.render(&buffer), &mut had_error),
            }
            buffer.clear();
        }
    }
    if had_error && !interactive {
        std::process::exit(1);
    }
}

/// Plans `sql` as one batch, submits it, and prints per-query results.
/// Every failure is recoverable: the error renders and the session
/// keeps serving (a failed submit rolled its cache changes back).
fn run_batch(session: &mut MqoSession, planner: &mut SqlPlanner, sql: &str, had_error: &mut bool) {
    let planned = match planner.plan_text(session.catalog_mut(), sql) {
        Ok(p) => p,
        Err(e) => return fail(&e.render(sql), had_error),
    };
    let batch = to_batch(&planned);
    let r = match session.submit(&batch) {
        Ok(r) => r,
        Err(e) => return fail(&e.render(), had_error),
    };
    if r.degraded {
        eprintln!("warning: budget expired — best-so-far plan, aborted queries return no rows");
    }
    for (pq, err) in planned.iter().zip(&r.query_errors) {
        if let Some(e) = err {
            eprintln!("-- {}: aborted: {e}", pq.label);
        }
    }
    print_batch(session, &planned, &r);
}

fn print_batch(session: &MqoSession, planned: &[PlannedQuery], r: &BatchResult) {
    println!(
        "batch: {} queries | est cost {} | exec {:.1}ms | {} temps, {} cache hits",
        planned.len(),
        r.cost,
        r.exec_wall.as_secs_f64() * 1e3,
        r.temps_built,
        r.cache_hits
    );
    for (pq, table) in planned.iter().zip(&r.results) {
        let table = if pq.order_by.is_empty() {
            table.clone()
        } else {
            apply_order(table, &pq.order_by)
        };
        let names: Vec<&str> = table
            .schema
            .iter()
            .map(|&c| session.catalog().column(c).name.as_str())
            .collect();
        println!(
            "-- {}: {} rows [{}]",
            pq.label,
            table.len(),
            names.join(", ")
        );
        const SHOW: usize = 10;
        for i in 0..table.len().min(SHOW) {
            let row: Vec<String> = table.row(i).iter().map(|v| v.to_string()).collect();
            println!("   {}", row.join(" | "));
        }
        if table.len() > SHOW {
            println!("   … {} more", table.len() - SHOW);
        }
    }
}

fn print_stats(session: &MqoSession) {
    let s = session.stats();
    println!(
        "session: {} batches, {} queries | {} cache hits, {} temps built",
        s.batches, s.queries, s.cache_hits, s.temps_built
    );
    println!(
        "  mv cache: {} entries, {:.1} KiB / {:.0} KiB budget",
        s.mv_entries,
        s.mv_bytes_used as f64 / 1024.0,
        s.mv_budget_bytes as f64 / 1024.0
    );
    println!(
        "  est cost Σ {:.3}s | opt Σ {:.1}ms | exec Σ {:.1}ms",
        s.est_cost_secs,
        s.opt_secs * 1e3,
        s.exec_secs * 1e3
    );
    println!(
        "  robustness: {} degraded ({} expiries, {} query aborts) | {} failed / {} rolled back | {} env fallbacks",
        s.degraded_submits,
        s.budget_expiries,
        s.query_aborts,
        s.failed_submits,
        s.rolled_back,
        s.env_fallbacks
    );
}

/// Renders the error and records it; the loop always keeps going (a
/// piped run exits nonzero at the very end instead of mid-script).
fn fail(msg: &str, had_error: &mut bool) {
    eprintln!("{msg}");
    *had_error = true;
}
