-- Demo script for the SQL REPL (examples/sql_repl.rs):
--   cargo run --release --example sql_repl < examples/repl_demo.sql
-- Each batch is the paper's fig-6 family written as SQL; the second
-- submission of the Q11 pair runs warm out of the session MV cache.

-- TPC-D Q11: supplier stock value by part, plus the ungrouped total.
SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
  AND n_name = 'n_name_000007'
GROUP BY ps_partkey
ORDER BY value DESC;

SELECT SUM(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
  AND n_name = 'n_name_000007';
go;

-- TPC-D Q15: max revenue over a shared revenue view, then the join
-- back to supplier. Both statements share the aggregated subquery.
SELECT MAX(rev) AS maxrev
FROM (SELECT l_suppkey, SUM(l_extendedprice * (1.0 - l_discount)) AS rev
      FROM lineitem
      WHERE l_shipdate >= 1000 AND l_shipdate < 1090
      GROUP BY l_suppkey);

SELECT s_suppkey, l_suppkey, rev
FROM supplier
JOIN (SELECT l_suppkey, SUM(l_extendedprice * (1.0 - l_discount)) AS rev
      FROM lineitem
      WHERE l_shipdate >= 1000 AND l_shipdate < 1090
      GROUP BY l_suppkey) ON s_suppkey = l_suppkey
ORDER BY rev DESC;
go;

-- Resubmit the Q11 pair: the session MV cache should serve it warm.
SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
  AND n_name = 'n_name_000007'
GROUP BY ps_partkey;
go;

stats;
quit;
