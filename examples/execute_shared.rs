//! End-to-end: optimize a batch and execute it unshared vs shared,
//! verify the results agree, and report the actual speedup (the
//! mechanism behind the paper's Figure 7) — now on the `MqoSession`
//! facade, which folds expand → search → extract → execute into one
//! `submit` call per batch.
//!
//! Two sessions run the same batch over the same generated database:
//! one searching with Volcano (no sharing — the baseline), one with
//! Greedy (shared temps). A second Greedy submit then shows the serving
//! dimension the session adds on top of Figure 7: the temps of the
//! first submit are served warm from the MvStore, so the repeat batch
//! builds nothing.
//!
//! Run with: `cargo run --release --example execute_shared`

use mqo::exec::{generate_database, normalize_result, results_approx_equal, ExecMode, ExecOptions};
use mqo::session::{MqoSession, SessionOptions};
use mqo::workloads::Tpcd;

fn main() {
    // Small scale so data generation stays fast; statistics match data.
    let w = Tpcd::new(0.01);
    let batch = w.q11();

    println!("generating data for {} tables…", w.catalog.tables().len());
    let db = generate_database(&w.catalog, 7, usize::MAX);
    let exec = ExecOptions::from_env();
    match exec.mode {
        ExecMode::Vectorized => println!(
            "engine: vectorized columnar, {} rows/batch (MQO_BATCH_ROWS)",
            exec.batch_rows
        ),
        ExecMode::Row => println!("engine: legacy row-at-a-time (MQO_EXEC_MODE=row)"),
    }

    let mut unshared_session = MqoSession::new(
        w.catalog.clone(),
        db.clone(),
        SessionOptions::new().with_strategy("Volcano"),
    );
    let mut shared_session = MqoSession::new(w.catalog, db, SessionOptions::new());

    let unshared = unshared_session.submit(&batch).unwrap();
    let shared = shared_session.submit(&batch).unwrap();

    // Sharing must never change results.
    assert_eq!(unshared.results.len(), shared.results.len());
    for (a, b) in unshared.results.iter().zip(shared.results.iter()) {
        // float aggregates may differ in the last bit (summation order)
        assert!(
            results_approx_equal(&normalize_result(a), &normalize_result(b), 1e-9),
            "results diverged!"
        );
    }

    println!("Q11-like batch ({} queries):", batch.len());
    println!(
        "  unshared execution: {:>8.1} ms ({} rows)",
        unshared.exec_wall.as_secs_f64() * 1e3,
        unshared.rows_out
    );
    println!(
        "  shared execution:   {:>8.1} ms ({} rows, {} temp(s) materialized)",
        shared.exec_wall.as_secs_f64() * 1e3,
        shared.rows_out,
        shared.temps_built
    );
    println!(
        "  speedup: {:.2}x — identical results verified row by row",
        unshared.exec_wall.as_secs_f64() / shared.exec_wall.as_secs_f64()
    );

    // The serving dimension: the same batch again, now warm.
    let warm = shared_session.submit(&batch).unwrap();
    assert!(warm.cache_hits > 0 && warm.temps_built == 0);
    println!(
        "  warm re-submit:     {:>8.1} ms ({} cache hit(s), 0 temps built, est cost {} vs {})",
        warm.exec_wall.as_secs_f64() * 1e3,
        warm.cache_hits,
        warm.cost,
        shared.cost
    );
}
