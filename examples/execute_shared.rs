//! End-to-end: optimize a batch, execute both the unshared and the shared
//! plan on generated data, verify the results agree, and report the
//! actual speedup (the mechanism behind the paper's Figure 7).
//!
//! The staged session API pays off here: the plans and the physical DAG
//! they reference come from one prepared context, so execution needs no
//! context rebuild.
//!
//! Run with: `cargo run --release --example execute_shared`

use mqo::core::Optimizer;
use mqo::exec::{
    execute_plan, generate_database, normalize_result, results_approx_equal, ExecMode, ExecOptions,
};
use mqo::util::FxHashMap;
use mqo::workloads::Tpcd;

fn main() {
    // Small scale so data generation stays fast; statistics match data.
    let w = Tpcd::new(0.01);
    let batch = w.q11();

    println!("generating data for {} tables…", w.catalog.tables().len());
    let db = generate_database(&w.catalog, 7, usize::MAX);
    let params = FxHashMap::default();
    let exec = ExecOptions::from_env();
    match exec.mode {
        ExecMode::Vectorized => println!(
            "engine: vectorized columnar, {} rows/batch (MQO_BATCH_ROWS)",
            exec.batch_rows
        ),
        ExecMode::Row => println!("engine: legacy row-at-a-time (MQO_EXEC_MODE=row)"),
    }

    let optimizer = Optimizer::new(&w.catalog);
    let ctx = optimizer.prepare(&batch); // one DAG for both strategies
    let volcano = optimizer.search(&ctx, "Volcano").unwrap();
    let greedy = optimizer.search(&ctx, "Greedy").unwrap();

    let unshared = execute_plan(&w.catalog, &ctx.pdag, &volcano.plan, &db, &params);
    let shared = execute_plan(&w.catalog, &ctx.pdag, &greedy.plan, &db, &params);

    // Sharing must never change results.
    assert_eq!(unshared.results.len(), shared.results.len());
    for (a, b) in unshared.results.iter().zip(shared.results.iter()) {
        // float aggregates may differ in the last bit (summation order)
        assert!(
            results_approx_equal(&normalize_result(a), &normalize_result(b), 1e-9),
            "results diverged!"
        );
    }

    println!("Q11-like batch ({} queries):", batch.len());
    println!(
        "  unshared execution: {:>8.1} ms ({} rows)",
        unshared.wall.as_secs_f64() * 1e3,
        unshared.rows_out
    );
    println!(
        "  shared execution:   {:>8.1} ms ({} rows, {} temp(s) materialized)",
        shared.wall.as_secs_f64() * 1e3,
        shared.rows_out,
        shared.temps_built
    );
    println!(
        "  speedup: {:.2}x — identical results verified row by row",
        unshared.wall.as_secs_f64() / shared.wall.as_secs_f64()
    );
}
