//! Umbrella crate for the MQO workspace: re-exports the public API of
//! every member crate so examples and downstream users can depend on one
//! crate (`mqo`).
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use mqo_catalog as catalog;
pub use mqo_core as core;
pub use mqo_cost as cost;
pub use mqo_dag as dag;
pub use mqo_exec as exec;
pub use mqo_expr as expr;
pub use mqo_logical as logical;
pub use mqo_physical as physical;
pub use mqo_util as util;
pub use mqo_workloads as workloads;
