//! Umbrella crate for the MQO workspace: re-exports the public API of
//! every member crate so examples and downstream users can depend on one
//! crate (`mqo`).
//!
//! The crate documentation below is `README.md` verbatim, so the
//! README's code snippets run as doc-tests; `DESIGN.md` holds the
//! system inventory and the paper-section-to-code map.
//!
#![doc = include_str!("../README.md")]

pub use mqo_analyze as analyze;
pub use mqo_catalog as catalog;
pub use mqo_chaos as chaos;
pub use mqo_core as core;
pub use mqo_cost as cost;
pub use mqo_dag as dag;
pub use mqo_exec as exec;
pub use mqo_expr as expr;
pub use mqo_ks15 as ks15;
pub use mqo_logical as logical;
pub use mqo_physical as physical;
pub use mqo_serve as serve;
pub use mqo_session as session;
pub use mqo_sql as sql;
pub use mqo_util as util;
pub use mqo_verify as verify;
pub use mqo_workloads as workloads;
