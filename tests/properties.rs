//! Property-based tests over randomly generated workloads: the system's
//! core invariants must hold for *every* chain-join batch, not just the
//! curated workloads.

use mqo::catalog::Catalog;
use mqo::core::{optimize, Algorithm, CostState, OptStats, Options};
use mqo::dag::{sharable_groups, Dag, DagConfig};
use mqo::exec::{execute_plan, generate_database, normalize_result, results_approx_equal};
use mqo::expr::{Atom, CmpOp, Predicate};
use mqo::logical::{Batch, LogicalPlan, Query};
use mqo::physical::{CostTable, PhysicalDag};
use mqo::util::FxHashMap;
use proptest::prelude::*;

/// A randomly parameterized chain-join workload description.
#[derive(Debug, Clone)]
struct ChainWorkload {
    n_tables: usize,
    rows: Vec<u32>,
    // (lo, len, bound) per query
    queries: Vec<(usize, usize, i64)>,
}

fn chain_workload() -> impl Strategy<Value = ChainWorkload> {
    (3usize..6)
        .prop_flat_map(|n_tables| {
            (
                Just(n_tables),
                prop::collection::vec(200u32..2_000, n_tables),
                prop::collection::vec((0usize..n_tables, 2usize..n_tables, 0i64..90), 1..4),
            )
        })
        .prop_map(|(n_tables, rows, raw)| {
            let queries = raw
                .into_iter()
                .map(|(lo, len, bound)| {
                    let lo = lo.min(n_tables - 2);
                    let len = len.min(n_tables - lo);
                    (lo, len.max(2), bound)
                })
                .collect();
            ChainWorkload {
                n_tables,
                rows,
                queries,
            }
        })
}

fn build(w: &ChainWorkload) -> (Catalog, Batch) {
    let mut cat = Catalog::new();
    for (i, &r) in w.rows.iter().enumerate() {
        let _ = cat
            .table(&format!("c{i}"))
            .rows(r as f64)
            .int_key("p")
            .int_uniform("sp", 0, (w.rows[(i + 1) % w.n_tables] as i64 - 1).max(0))
            .int_uniform("num", 0, 99)
            .clustered_on_first()
            .build();
    }
    let mut queries = Vec::new();
    for (qi, &(lo, len, bound)) in w.queries.iter().enumerate() {
        let hi = (lo + len - 1).min(w.n_tables - 1);
        let mut plan = LogicalPlan::scan(cat.table_by_name(&format!("c{lo}")).unwrap().id).select(
            Predicate::atom(Atom::cmp(
                cat.col(&format!("c{lo}"), "num"),
                CmpOp::Ge,
                bound,
            )),
        );
        for j in lo + 1..=hi {
            let pred = Predicate::atom(Atom::eq_cols(
                cat.col(&format!("c{}", j - 1), "sp"),
                cat.col(&format!("c{j}"), "p"),
            ));
            plan = plan.join(
                LogicalPlan::scan(cat.table_by_name(&format!("c{j}")).unwrap().id),
                pred,
            );
        }
        queries.push(Query::new(format!("q{qi}"), plan));
    }
    (cat, Batch::of(queries))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, ..ProptestConfig::default()
    })]

    /// Every heuristic's cost is bounded by Volcano's on any workload.
    #[test]
    fn heuristics_never_worse_than_volcano(w in chain_workload()) {
        let (cat, batch) = build(&w);
        let opts = Options::new();
        let base = optimize(&batch, &cat, Algorithm::Volcano, &opts);
        prop_assert!(base.cost.is_finite());
        for alg in [Algorithm::VolcanoSH, Algorithm::VolcanoRU, Algorithm::Greedy] {
            let r = optimize(&batch, &cat, alg, &opts);
            prop_assert!(
                r.cost <= base.cost * 1.0001,
                "{} {} > {}", alg.name(), r.cost, base.cost
            );
        }
    }

    /// The incremental cost update agrees with full recomputation after
    /// arbitrary add/remove sequences of sharable candidates.
    #[test]
    fn incremental_equals_full_recompute(w in chain_workload(), picks in prop::collection::vec(any::<u16>(), 1..12)) {
        let (cat, batch) = build(&w);
        let dag = Dag::expand(&batch, &cat, DagConfig::default());
        let pdag = PhysicalDag::build(&dag, &cat, mqo::cost::CostParams::default());
        let mut cands = Vec::new();
        for (g, _) in sharable_groups(&dag) {
            cands.extend(pdag.variants(g).iter().copied());
        }
        if cands.is_empty() {
            return Ok(());
        }
        let mut state = CostState::new(&pdag);
        let mut stats = OptStats::default();
        for &p in &picks {
            let n = cands[p as usize % cands.len()];
            if state.mat.contains(n) {
                state.remove_mat(&pdag, n, &mut stats);
            } else {
                state.add_mat(&pdag, n, &mut stats);
            }
            let oracle = CostTable::compute(&pdag, &state.mat);
            for i in 0..pdag.num_nodes() {
                let (a, b) = (state.table.node_cost[i], oracle.node_cost[i]);
                prop_assert!(
                    (a.secs() - b.secs()).abs() < 1e-9 || (!a.is_finite() && !b.is_finite()),
                    "node {i}: {a} vs {b}"
                );
            }
        }
    }

    /// Executing the greedy (shared) plan returns the same rows as the
    /// Volcano (unshared) plan on random data.
    #[test]
    fn shared_execution_matches_unshared(w in chain_workload(), seed in any::<u32>()) {
        let (cat, batch) = build(&w);
        let opts = Options::new();
        let db = generate_database(&cat, seed as u64, 600);
        let params = FxHashMap::default();

        let base = optimize(&batch, &cat, Algorithm::Volcano, &opts);
        let greedy = optimize(&batch, &cat, Algorithm::Greedy, &opts);
        let ctx = mqo::core::OptContext::build(&batch, &cat, &opts);
        let a = execute_plan(&cat, &ctx.pdag, &base.plan, &db, &params);
        let b = execute_plan(&cat, &ctx.pdag, &greedy.plan, &db, &params);
        prop_assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(b.results.iter()) {
            prop_assert!(
                results_approx_equal(&normalize_result(x), &normalize_result(y), 1e-9)
            );
        }
    }

    /// DAG invariants: expansion terminates, numbering is topological,
    /// group properties are consistent, identical batches give identical
    /// DAG sizes (determinism).
    #[test]
    fn dag_structural_invariants(w in chain_workload()) {
        let (cat, batch) = build(&w);
        let dag = Dag::expand(&batch, &cat, DagConfig::default());
        let dag2 = Dag::expand(&batch, &cat, DagConfig::default());
        prop_assert_eq!(dag.num_groups(), dag2.num_groups());
        prop_assert_eq!(dag.num_ops(), dag2.num_ops());
        for &g in dag.topo_order() {
            let gtopo = dag.group(g).topo;
            prop_assert!(dag.group_ops(g).count() > 0, "group without ops");
            for o in dag.group_ops(g) {
                for i in dag.op_inputs(o) {
                    prop_assert!(
                        dag.group(i).topo < gtopo,
                        "child not below parent in topo order"
                    );
                }
            }
            prop_assert!(dag.group(g).rows >= 1.0);
            prop_assert!(dag.group(g).width >= 1);
        }
    }

    /// Sharability: a group is sharable only if some plan can use it more
    /// than once; single-query batches over distinct relations share
    /// nothing, and degrees never go below 1 for reachable groups.
    #[test]
    fn sharability_bounds(w in chain_workload()) {
        let (cat, batch) = build(&w);
        let dag = Dag::expand(&batch, &cat, DagConfig::default());
        let degrees = mqo::dag::degree_of_sharing(&dag);
        let nqueries = batch.len() as f64;
        for (&g, &d) in degrees.iter() {
            prop_assert!(d <= nqueries + 1e-9, "degree {d} exceeds query count");
            if g != dag.root() {
                prop_assert!(d >= 0.0);
            }
        }
    }
}
