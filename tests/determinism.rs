//! Parallel benefit probing must never change the answer: Greedy and
//! KS15 return the identical `(cost, mat, plan)` at every thread count,
//! and the merged `OptStats` work counters of a parallel probe-all run
//! equal the sequential ones exactly.

use mqo::core::{GreedyOptions, Optimized, Optimizer, Options, Registry};
use mqo::ks15::Ks15Greedy;
use mqo::physical::ChosenOp;
use mqo::workloads::{Scaleup, Tpcd};
use std::sync::Arc;

/// Everything observable about a search result, in comparable form:
/// exact cost bits, the sorted materialized set, and the full extracted
/// plan (choices sorted by node, query roots, topo-ordered temps).
#[derive(Debug, PartialEq)]
struct Fingerprint {
    cost_bits: u64,
    mat: Vec<usize>,
    choices: Vec<(usize, ChosenOp)>,
    query_roots: Vec<usize>,
    plan_temps: Vec<usize>,
}

fn fingerprint(r: &Optimized) -> Fingerprint {
    let mut mat: Vec<usize> = r.mat.iter().map(|n| n.index()).collect();
    mat.sort_unstable();
    let mut choices: Vec<(usize, ChosenOp)> = r
        .plan
        .choices
        .iter()
        .map(|(n, &c)| (n.index(), c))
        .collect();
    choices.sort_unstable_by_key(|&(n, _)| n);
    Fingerprint {
        cost_bits: r.cost.secs().to_bits(),
        mat,
        choices,
        query_roots: r.plan.query_roots.iter().map(|n| n.index()).collect(),
        plan_temps: r.plan.materialized.iter().map(|n| n.index()).collect(),
    }
}

fn search_at(
    catalog: &mqo::catalog::Catalog,
    batch: &mqo::logical::Batch,
    strategy: &str,
    options: Options,
) -> Optimized {
    let mut optimizer = Optimizer::with_options(catalog, options);
    optimizer.register(Arc::new(Ks15Greedy)).unwrap();
    let ctx = optimizer.prepare(batch);
    optimizer.search(&ctx, strategy).unwrap()
}

/// Greedy and KS15 must return the identical plan, cost and materialized
/// set for threads ∈ {1, 2, 8} on both the scale-up (CQ) and TPCD-like
/// workloads.
#[test]
fn greedy_and_ks15_identical_across_thread_counts() {
    let scaleup = Scaleup::new(2_000);
    let tpcd = Tpcd::new(1.0);
    let batches = [
        ("CQ2", &scaleup.catalog, scaleup.cq(2)),
        ("BQ2", &tpcd.catalog, tpcd.bq(2)),
    ];
    for (name, catalog, batch) in &batches {
        for strategy in ["Greedy", "KS15-Greedy"] {
            let reference = fingerprint(&search_at(
                catalog,
                batch,
                strategy,
                Options::new().with_threads(1),
            ));
            for threads in [2usize, 8] {
                let got = fingerprint(&search_at(
                    catalog,
                    batch,
                    strategy,
                    Options::new().with_threads(threads),
                ));
                assert_eq!(
                    got, reference,
                    "{strategy} diverged on {name} at {threads} threads"
                );
            }
        }
    }
}

/// The monotonicity ablation probes every remaining candidate per round,
/// so the parallel wave does *exactly* the sequential probes: the merged
/// worker counters must equal the sequential run's, not just correlate.
#[test]
fn parallel_probe_all_counters_equal_sequential() {
    let w = Scaleup::new(2_000);
    let batch = w.cq(2);
    let opts = |threads: usize| {
        Options::new()
            .with_greedy(GreedyOptions::new().with_monotonicity(false))
            .with_threads(threads)
    };
    let seq = search_at(&w.catalog, &batch, "Greedy", opts(1));
    for threads in [2usize, 4] {
        let par = search_at(&w.catalog, &batch, "Greedy", opts(threads));
        assert_eq!(
            par.stats.benefit_recomputations, seq.stats.benefit_recomputations,
            "benefit probes lost or duplicated at {threads} threads"
        );
        assert_eq!(
            par.stats.cost_propagations, seq.stats.cost_propagations,
            "cost propagations diverged at {threads} threads"
        );
        assert_eq!(par.stats.materialized, seq.stats.materialized);
        assert_eq!(par.stats.sharable, seq.stats.sharable);
        assert_eq!(par.stats.candidates, seq.stats.candidates);
        assert_eq!(fingerprint(&par), fingerprint(&seq));
    }
}

/// KS15's descent-pass probes are sharded over replicas of one fixed
/// state per round, so its counters are thread-count-invariant too.
#[test]
fn ks15_counters_equal_across_thread_counts() {
    let w = Scaleup::new(2_000);
    let batch = w.cq(2);
    let seq = search_at(
        &w.catalog,
        &batch,
        "KS15-Greedy",
        Options::new().with_threads(1),
    );
    let par = search_at(
        &w.catalog,
        &batch,
        "KS15-Greedy",
        Options::new().with_threads(4),
    );
    assert_eq!(
        par.stats.benefit_recomputations,
        seq.stats.benefit_recomputations
    );
    assert_eq!(par.stats.cost_propagations, seq.stats.cost_propagations);
}

/// `search_all_parallel` returns what per-strategy `search` calls would,
/// in registration order — concurrency must not reorder or alter results.
#[test]
fn search_all_parallel_matches_sequential_searches() {
    let w = Scaleup::new(2_000);
    let batch = w.cq(2);
    // Curated registry (the `with_registry` constructor): skip the
    // Exhaustive oracle, add KS15 through the public extension point.
    let mut registry = Registry::empty();
    for s in Registry::builtin().iter() {
        if s.name() != "Exhaustive" {
            registry.register(Arc::clone(s)).unwrap();
        }
    }
    registry.register(Arc::new(Ks15Greedy)).unwrap();
    let optimizer = Optimizer::with_registry(&w.catalog, Options::new().with_threads(4), registry);
    let ctx = optimizer.prepare(&batch);

    let parallel = optimizer.search_all_parallel(&ctx).unwrap();
    let names: Vec<&str> = parallel.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        [
            "Volcano",
            "Volcano-SH",
            "Volcano-RU",
            "Greedy",
            "KS15-Greedy"
        ],
        "results must arrive in registration order"
    );
    for (name, result) in &parallel {
        let solo = optimizer.search(&ctx, name).unwrap();
        assert_eq!(
            fingerprint(result),
            fingerprint(&solo),
            "{name} diverged under concurrent search"
        );
    }
}
