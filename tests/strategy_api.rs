//! The open dispatch, exercised from outside `mqo-core`: a user-defined
//! toy strategy runs end-to-end through the `Optimizer` session, the
//! registry's error behaviors are pinned down, the staged pipeline
//! agrees with the one-shot legacy path, and the KS15 strategy (itself
//! an out-of-core crate) is held against the Exhaustive oracle.

use mqo::catalog::{Catalog, ColStats, ColType};
use mqo::core::{
    optimize, Algorithm, CostState, OptContext, OptStats, Optimized, Optimizer, Options, Registry,
    Strategy, StrategyError,
};
use mqo::exec::{execute_plan, generate_database, normalize_result, results_approx_equal};
use mqo::expr::{AggExpr, AggFunc, Atom, Predicate, ScalarExpr};
use mqo::ks15::Ks15Greedy;
use mqo::logical::{Batch, LogicalPlan, Query};
use mqo::physical::{ExtractedPlan, MatSet};
use mqo::util::{FxHashMap, MqoError, MqoErrorKind};
use std::sync::Arc;

/// A user-defined strategy, written against the public API only: it
/// materializes the single sharable node with the largest standalone
/// benefit (a one-step greedy), or nothing if no node pays.
struct BestSingleTemp;

impl Strategy for BestSingleTemp {
    fn name(&self) -> &str {
        "Best-Single-Temp"
    }

    fn search(&self, ctx: &OptContext<'_>, _options: &Options) -> Result<Optimized, MqoError> {
        let pdag = &ctx.pdag;
        let mut stats = OptStats::default();
        let mut state = CostState::new(pdag);
        let baseline = state.total(pdag);

        let mut best: Option<(mqo::physical::PhysNodeId, f64)> = None;
        for (g, _) in mqo::dag::sharable_groups(&ctx.dag) {
            if ctx.dag.group(g).has_param {
                continue;
            }
            for &n in pdag.variants(g) {
                stats.benefit_recomputations += 1;
                state.add_mat(pdag, n, &mut stats);
                let benefit = (baseline - state.total(pdag)).secs();
                state.remove_mat(pdag, n, &mut stats);
                if benefit > best.map(|(_, b)| b).unwrap_or(1e-9) {
                    best = Some((n, benefit));
                }
            }
        }
        if let Some((n, _)) = best {
            state.add_mat(pdag, n, &mut stats);
        }
        stats.materialized = state.mat.len();
        let cost = state.total(pdag);
        let plan = ExtractedPlan::extract(pdag, &state.table, &state.mat);
        Ok(Optimized {
            plan,
            mat: state.mat,
            cost,
            stats,
        })
    }
}

/// Two identical aggregates over an expensive join, at executable scale.
fn executable_batch() -> (Catalog, Batch) {
    let mut cat = Catalog::new();
    let a = cat
        .table("sa")
        .rows(2_000.0)
        .int_key("sak")
        .int_uniform("sav", 0, 49)
        .clustered_on_first()
        .build();
    let b = cat
        .table("sb")
        .rows(4_000.0)
        .int_key("sbk")
        .int_uniform("safk", 0, 1_999)
        .clustered_on_first()
        .build();
    let sav = cat.col("sa", "sav");
    let sbk = cat.col("sb", "sbk");
    let tot = cat.derived_column("stot", ColType::Float, ColStats::opaque(50.0));
    let jab = Predicate::atom(Atom::eq_cols(cat.col("sa", "sak"), cat.col("sb", "safk")));
    let q = LogicalPlan::scan(a)
        .join(LogicalPlan::scan(b), jab)
        .aggregate(
            vec![sav],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(sbk), tot)],
        );
    (
        cat,
        Batch::of(vec![Query::new("q1", q.clone()), Query::new("q2", q)]),
    )
}

#[test]
fn user_strategy_runs_end_to_end() {
    let (cat, batch) = executable_batch();
    let mut optimizer = Optimizer::new(&cat);
    optimizer.register(Arc::new(BestSingleTemp)).unwrap();

    let ctx = optimizer.prepare(&batch);
    let base = optimizer.search(&ctx, "Volcano").unwrap();
    let toy = optimizer.search(&ctx, "Best-Single-Temp").unwrap();

    // the toy strategy shares the duplicated aggregate
    assert_eq!(toy.stats.materialized, 1);
    assert!(
        toy.cost < base.cost,
        "toy {} vs base {}",
        toy.cost,
        base.cost
    );
    // its context-derived stats were stamped by the session
    assert!(toy.stats.dag_groups > 0);
    assert!(toy.stats.search_time_secs > 0.0);

    // and its plan EXECUTES, producing the same rows as the unshared one
    let db = generate_database(&cat, 11, usize::MAX);
    let params = FxHashMap::default();
    let unshared = execute_plan(&cat, &ctx.pdag, &base.plan, &db, &params);
    let shared = execute_plan(&cat, &ctx.pdag, &toy.plan, &db, &params);
    assert!(shared.temps_built >= 1);
    assert_eq!(unshared.results.len(), shared.results.len());
    for (x, y) in unshared.results.iter().zip(shared.results.iter()) {
        assert!(results_approx_equal(
            &normalize_result(x),
            &normalize_result(y),
            1e-9
        ));
    }
}

#[test]
fn registry_lookup_miss_is_an_error() {
    let (cat, batch) = executable_batch();
    let optimizer = Optimizer::new(&cat);
    let ctx = optimizer.prepare(&batch);
    let err = optimizer.search(&ctx, "Simulated-Annealing").unwrap_err();
    assert_eq!(err.kind, MqoErrorKind::UnknownStrategy);
    // the error formats usefully
    assert!(err.to_string().contains("Simulated-Annealing"));
}

#[test]
fn duplicate_registration_is_an_error() {
    let (cat, _) = executable_batch();
    let mut optimizer = Optimizer::new(&cat);
    optimizer.register(Arc::new(BestSingleTemp)).unwrap();
    let err = optimizer.register(Arc::new(BestSingleTemp)).unwrap_err();
    assert_eq!(err, StrategyError::Duplicate("Best-Single-Temp".into()));
    // a clashing name against a built-in is equally rejected
    let err = optimizer
        .register(Arc::new(mqo::core::Volcano))
        .unwrap_err();
    assert_eq!(err, StrategyError::Duplicate("Volcano".into()));
    // registry state is unchanged: built-ins + one toy
    assert_eq!(optimizer.registry().len(), Registry::builtin().len() + 1);
}

#[test]
fn staged_pipeline_matches_one_shot_legacy_path() {
    let (cat, batch) = executable_batch();
    let options = Options::new();

    // legacy: enum dispatch, one shot
    let legacy = optimize(&batch, &cat, Algorithm::Greedy, &options);

    // staged: expand → physicalize → search
    let optimizer = Optimizer::with_options(&cat, options);
    let expanded = optimizer.expand(&batch);
    assert!(expanded.elapsed_secs > 0.0);
    let ctx = optimizer.physicalize(expanded);
    assert!(ctx.dag_time_secs >= 0.0);
    let staged = optimizer.search(&ctx, "Greedy").unwrap();

    assert!((legacy.cost.secs() - staged.cost.secs()).abs() < 1e-9);
    assert_eq!(legacy.stats.materialized, staged.stats.materialized);
    assert_eq!(legacy.stats.dag_groups, staged.stats.dag_groups);
}

#[test]
fn extract_stage_rederives_the_plan_for_any_mat_set() {
    let (cat, batch) = executable_batch();
    let optimizer = Optimizer::new(&cat);
    let ctx = optimizer.prepare(&batch);
    let greedy = optimizer.search(&ctx, "Greedy").unwrap();

    // re-extracting greedy's own set reproduces its plan cost…
    let replayed = optimizer.extract(&ctx, &greedy.mat);
    assert_eq!(replayed.materialized.len(), greedy.plan.materialized.len());

    // …and the empty set yields the unshared baseline
    let unshared = optimizer.extract(&ctx, &MatSet::new());
    assert!(unshared.materialized.is_empty());
}

#[test]
fn ks15_holds_against_the_exhaustive_oracle() {
    let (cat, batch) = executable_batch();
    let mut optimizer = Optimizer::new(&cat);
    optimizer.register(Arc::new(Ks15Greedy)).unwrap();
    let ctx = optimizer.prepare(&batch);

    let oracle = optimizer.search(&ctx, "Exhaustive").unwrap();
    let greedy = optimizer.search(&ctx, "Greedy").unwrap();
    let ks15 = optimizer.search(&ctx, "KS15-Greedy").unwrap();

    // the oracle lower-bounds both heuristics…
    assert!(oracle.cost <= greedy.cost * 1.0001);
    assert!(oracle.cost <= ks15.cost * 1.0001);
    // …and both stay within 10% of it on this small batch
    assert!(greedy.cost.secs() <= oracle.cost.secs() * 1.10);
    assert!(ks15.cost.secs() <= oracle.cost.secs() * 1.10);
    // KS15 shares something here, like greedy does
    assert!(ks15.stats.materialized >= 1);
}

#[test]
fn option_builders_compose() {
    let options = Options::new()
        .with_params(mqo::cost::CostParams::with_memory_mb(32))
        .with_greedy(
            mqo::core::GreedyOptions::new()
                .with_monotonicity(false)
                .with_sorted_candidates(false)
                .with_space_budget_blocks(Some(1_000.0)),
        );
    assert_eq!(options.params.mem_bytes, 32 * 1024 * 1024);
    assert!(!options.greedy.use_monotonicity);
    assert!(options.greedy.use_incremental);
    assert!(!options.greedy.sorted_candidates);
    assert_eq!(options.greedy.space_budget_blocks, Some(1_000.0));

    // builder-configured options drive the session like field-built ones
    let (cat, batch) = executable_batch();
    let optimizer = Optimizer::with_options(&cat, options);
    let ctx = optimizer.prepare(&batch);
    let g = optimizer.search(&ctx, "Greedy").unwrap();
    assert!(g.cost.is_finite());
}
