//! Workspace-level end-to-end tests: catalog → logical plans → DAG →
//! physical DAG → MQO algorithms → execution, across crates.

use mqo::catalog::{Catalog, ColStats, ColType};
use mqo::core::{optimize, Algorithm, OptContext, Options};
use mqo::exec::{execute_plan, generate_database, normalize_result, results_approx_equal};
use mqo::expr::{AggExpr, AggFunc, Atom, CmpOp, Predicate, ScalarExpr};
use mqo::logical::{validate, Batch, LogicalPlan, Query};
use mqo::util::FxHashMap;
use mqo::workloads::{no_overlap, Scaleup, Tpcd};

/// A three-query batch exercising joins, selections, aggregation and
/// subsumption at executable scale.
fn mixed_batch() -> (Catalog, Batch) {
    let mut cat = Catalog::new();
    let store = cat
        .table("store")
        .rows(50.0)
        .int_key("st_key")
        .int_uniform("st_region", 0, 4)
        .clustered_on_first()
        .build();
    let item = cat
        .table("item")
        .rows(400.0)
        .int_key("it_key")
        .int_uniform("it_cat", 0, 19)
        .clustered_on_first()
        .build();
    let sales = cat
        .table("sales")
        .rows(20_000.0)
        .int_key("sa_key")
        .int_uniform("sa_store", 0, 49)
        .int_uniform("sa_item", 0, 399)
        .int_uniform("sa_qty", 1, 10)
        .int_uniform("sa_day", 0, 364)
        .clustered_on_first()
        .build();
    let total_q = cat.derived_column("total_q", ColType::Float, ColStats::opaque(50.0));

    let st_key = cat.col("store", "st_key");
    let sa_store = cat.col("sales", "sa_store");
    let it_key = cat.col("item", "it_key");
    let sa_item = cat.col("sales", "sa_item");
    let sa_qty = cat.col("sales", "sa_qty");
    let sa_day = cat.col("sales", "sa_day");
    let st_region = cat.col("store", "st_region");

    let sales_recent = |cut: i64| {
        LogicalPlan::scan(sales).select(Predicate::atom(Atom::cmp(sa_day, CmpOp::Ge, cut)))
    };
    // q1: quantity by region, recent sales
    let q1 = LogicalPlan::scan(store)
        .join(
            sales_recent(180),
            Predicate::atom(Atom::eq_cols(st_key, sa_store)),
        )
        .aggregate(
            vec![st_region],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(sa_qty), total_q)],
        );
    // q2: same join, more recent window (subsumption candidate)
    let q2 = LogicalPlan::scan(store)
        .join(
            sales_recent(300),
            Predicate::atom(Atom::eq_cols(st_key, sa_store)),
        )
        .aggregate(
            vec![st_region],
            vec![AggExpr::new(AggFunc::Sum, ScalarExpr::col(sa_qty), total_q)],
        );
    // q3: item-side join, projected
    let q3 = LogicalPlan::scan(item)
        .join(
            sales_recent(180),
            Predicate::atom(Atom::eq_cols(it_key, sa_item)),
        )
        .project(vec![cat.col("item", "it_cat"), sa_qty]);
    (
        cat,
        Batch::of(vec![
            Query::new("q1", q1),
            Query::new("q2", q2),
            Query::new("q3", q3),
        ]),
    )
}

#[test]
fn full_pipeline_all_algorithms_agree_on_results() {
    let (cat, batch) = mixed_batch();
    for q in &batch.queries {
        validate(&q.plan, &cat).unwrap();
    }
    let db = generate_database(&cat, 77, usize::MAX);
    let params = FxHashMap::default();
    let opts = Options::new();

    let base = optimize(&batch, &cat, Algorithm::Volcano, &opts);
    let base_ctx = OptContext::build(&batch, &cat, &opts);
    let base_out = execute_plan(&cat, &base_ctx.pdag, &base.plan, &db, &params);
    assert!(base_out.rows_out > 0);

    for alg in [
        Algorithm::VolcanoSH,
        Algorithm::VolcanoRU,
        Algorithm::Greedy,
        Algorithm::Exhaustive,
    ] {
        let r = optimize(&batch, &cat, alg, &opts);
        assert!(
            r.cost <= base.cost * 1.0001,
            "{}: {} > {}",
            alg.name(),
            r.cost,
            base.cost
        );
        let ctx = OptContext::build(&batch, &cat, &opts);
        let out = execute_plan(&cat, &ctx.pdag, &r.plan, &db, &params);
        for (qi, (a, b)) in base_out.results.iter().zip(out.results.iter()).enumerate() {
            assert!(
                results_approx_equal(&normalize_result(a), &normalize_result(b), 1e-9),
                "{} query {qi} diverged",
                alg.name()
            );
        }
    }
}

#[test]
fn greedy_matches_exhaustive_on_small_batch() {
    // the paper argues greedy approximates the exhaustive optimum; on a
    // small candidate space they should be close
    let (cat, batch) = mixed_batch();
    let opts = Options::new();
    let g = optimize(&batch, &cat, Algorithm::Greedy, &opts);
    let e = optimize(&batch, &cat, Algorithm::Exhaustive, &opts);
    assert!(e.cost <= g.cost * 1.0001);
    assert!(
        g.cost.secs() <= e.cost.secs() * 1.10,
        "greedy {} strays >10% from exhaustive {}",
        g.cost,
        e.cost
    );
}

#[test]
fn workload_figures_have_paper_shape() {
    // condensed assertions of every figure's qualitative claim
    let w = Tpcd::new(1.0);
    let opts = Options::new();

    // Figure 6: greedy dominates on stand-alone queries
    for (name, batch) in w.standalone() {
        let v = optimize(&batch, &w.catalog, Algorithm::Volcano, &opts).cost;
        let g = optimize(&batch, &w.catalog, Algorithm::Greedy, &opts).cost;
        assert!(g.secs() < v.secs() * 0.8, "{name}: {g} vs {v}");
    }

    // Figure 8: costs grow with batch size; greedy ≤ SH
    let mut prev = 0.0;
    for i in 1..=3 {
        let batch = w.bq(i);
        let v = optimize(&batch, &w.catalog, Algorithm::Volcano, &opts).cost;
        let s = optimize(&batch, &w.catalog, Algorithm::VolcanoSH, &opts).cost;
        let g = optimize(&batch, &w.catalog, Algorithm::Greedy, &opts).cost;
        assert!(v.secs() > prev);
        prev = v.secs();
        assert!(g <= s && s <= v);
    }

    // Figure 9/10: scale-up — linear-ish DAG growth, greedy wins, stats populated
    let sc = Scaleup::new(2_000);
    let r1 = optimize(&sc.cq(1), &sc.catalog, Algorithm::Greedy, &opts);
    let r3 = optimize(&sc.cq(3), &sc.catalog, Algorithm::Greedy, &opts);
    assert!(r3.stats.dag_groups > 2 * r1.stats.dag_groups);
    assert!(r3.stats.dag_groups < 8 * r1.stats.dag_groups);
    assert!(r3.stats.cost_propagations > r1.stats.cost_propagations);

    // §6.4: no-overlap batch is pure overhead
    let (cat, batch) = no_overlap();
    let v = optimize(&batch, &cat, Algorithm::Volcano, &opts);
    let g = optimize(&batch, &cat, Algorithm::Greedy, &opts);
    assert_eq!(g.stats.materialized, 0);
    assert!((g.cost.secs() - v.cost.secs()).abs() < 1e-9);
}

#[test]
fn memory_sweep_preserves_relative_gains() {
    // §6.4: gains relative to Volcano stay within a band across memory sizes
    let w = Tpcd::new(1.0);
    let batch = w.q11();
    let mut ratios = Vec::new();
    for mb in [6u64, 32, 128] {
        let mut opts = Options::new();
        opts.params = mqo::cost::CostParams::with_memory_mb(mb);
        let v = optimize(&batch, &w.catalog, Algorithm::Volcano, &opts).cost;
        let g = optimize(&batch, &w.catalog, Algorithm::Greedy, &opts).cost;
        ratios.push(v.secs() / g.secs());
    }
    let (lo, hi) = (
        ratios.iter().cloned().fold(f64::MAX, f64::min),
        ratios.iter().cloned().fold(0.0, f64::max),
    );
    assert!(
        hi / lo < 2.0,
        "relative gains unstable across memory: {ratios:?}"
    );
}

#[test]
fn scale_grows_benefit_not_opt_time() {
    // §6.4: BQ3 at scale 1 vs scale 10 — absolute savings grow ~linearly,
    // optimization stays in the same ballpark
    let opts = Options::new();
    let (mut savings, mut times) = (Vec::new(), Vec::new());
    for scale in [1.0, 10.0] {
        let w = Tpcd::new(scale);
        let batch = w.bq(3);
        let v = optimize(&batch, &w.catalog, Algorithm::Volcano, &opts);
        let g = optimize(&batch, &w.catalog, Algorithm::Greedy, &opts);
        savings.push(v.cost.secs() - g.cost.secs());
        times.push(g.stats.total_time_secs());
    }
    assert!(savings[1] > savings[0] * 3.0, "{savings:?}");
    assert!(times[1] < times[0] * 20.0 + 0.05, "{times:?}");
}
