//! Minimal offline stand-in for the `rand` crate.
//!
//! The workspace builds with no network access, so this in-tree shim
//! provides exactly the surface the member crates use: a seedable
//! deterministic generator ([`rngs::StdRng`]) and uniform range
//! sampling via [`Rng::random_range`]. The generator is a
//! SplitMix64-seeded xorshift64* stream — statistically fine for test
//! data generation and workload synthesis, **not** cryptographic.
//!
//! Swap this for the real `rand` crate by editing the single
//! `[workspace.dependencies]` line in the root `Cargo.toml`.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a stream of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed (deterministic).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods on any [`RngCore`] (the shim's analogue of
/// `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample a uniform value of type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 step ensures a zero seed still yields a
            // non-degenerate xorshift state.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            StdRng { state: z | 1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.random_range(-5i64..=5);
            assert_eq!(x, b.random_range(-5i64..=5));
            assert!((-5..=5).contains(&x));
            let f = a.random_range(0.0f64..1.0);
            assert_eq!(f, b.random_range(0.0f64..1.0));
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn covers_full_span() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
