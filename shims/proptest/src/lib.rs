//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the surface the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! integer range and tuple strategies, [`strategy::Just`],
//! [`prop_oneof!`], [`collection::vec`], [`arbitrary::any`], and the
//! `prop_assert*` macros.
//!
//! Inputs are generated from a deterministic per-case RNG, so runs are
//! reproducible; on failure the offending case index and message are
//! reported. **Shrinking is not implemented** — failures print the
//! unshrunk input case number only. Swap for the real crate by editing
//! `[workspace.dependencies]` in the root `Cargo.toml`.

pub mod strategy;

/// Test-case configuration and the per-test run loop.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of proptest's `Config`; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The input was rejected (not counted as failure).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Runs `body` for `config.cases` deterministic random cases,
    /// panicking (i.e. failing the `#[test]`) on the first `Fail`.
    ///
    /// # Panics
    ///
    /// Panics when a generated case fails — that is the test-failure signal.
    pub fn run<F>(config: &Config, mut body: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            // Fixed base so every run regenerates the same inputs.
            let seed = 0x5eed_0000_0000_0000u64 ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = StdRng::seed_from_u64(seed);
            match body(&mut rng) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest: case {case}/{} failed: {msg}", config.cases);
                }
            }
        }
    }
}

/// `any::<T>()` — full-domain strategies for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Returns the full-domain strategy for `Self`.
        fn arbitrary() -> Any<Self>;
    }

    /// Strategy over the whole domain of a primitive type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Returns the canonical strategy for `A` (as in `any::<u32>()`).
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        A::arbitrary()
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> Any<Self> { Any(PhantomData) }
            }
            impl Strategy for Any<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary() -> Any<Self> {
            Any(PhantomData)
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn new_value(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `prop::collection::vec` — vectors with strategy-driven elements.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements
    /// come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors: `vec(element, len)` where `len` is a
    /// `usize`, `Range<usize>`, or `RangeInclusive<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(&config, |rng| {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), rng);)+
                let case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
    )*};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($(|)? $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!` but fails only the current case (with its inputs
/// reported) rather than aborting the whole property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = i64> {
        prop_oneof![Just(1i64), 10i64..20, (-5i64..=-1).prop_map(|v| v * 2)]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 1u64..64, (a, b) in (0u32..3, -5i64..5)) {
            prop_assert!((1..64).contains(&x));
            prop_assert!(a < 3);
            prop_assert!((-5..5).contains(&b));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(small(), 1..4), w in prop::collection::vec(any::<u16>(), 3)) {
            prop_assert!((1..4).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
            for x in v {
                prop_assert!(x == 1 || (10..20).contains(&x) || (-10..=-2).contains(&x));
            }
        }

        #[test]
        fn flat_map_dependent(v in (2usize..5).prop_flat_map(|n| prop::collection::vec(Just(0u8), n)) ) {
            prop_assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    #[should_panic(expected = "proptest: case")]
    fn failure_panics() {
        crate::test_runner::run(
            &ProptestConfig {
                cases: 4,
                ..ProptestConfig::default()
            },
            |_rng| Err(TestCaseError::fail("boom")),
        );
    }
}
