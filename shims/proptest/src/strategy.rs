//! The [`Strategy`] trait and combinators: ranges, tuples, [`Just`],
//! map/flat-map, unions, and boxing.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from an RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn new_value(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.new_value(rng)
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
