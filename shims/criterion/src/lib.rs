//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the slice of the API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with simple adaptive wall-clock timing and a plain-text
//! report (no statistics, plots, or CLI). Swap for the real crate by
//! editing `[workspace.dependencies]` in the root `Cargo.toml`.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark; the shim scales iteration
/// counts so each `bench_function` costs roughly this much wall clock.
const TARGET: Duration = Duration::from_millis(300);

/// Entry point handed to each bench function by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), f);
        self
    }

    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times one closure under this group's name.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name.into()), f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// code under test.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over an adaptively chosen number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call sizes the measured batch.
        let probe = Instant::now();
        std::hint::black_box(f());
        let per_iter = probe.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<60} (no measurement)");
        return;
    }
    let per = b.elapsed.as_secs_f64() / b.iters as f64;
    println!(
        "{label:<60} {:>12}/iter  ({} iters)",
        fmt_time(per),
        b.iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Re-export so `criterion::black_box` keeps working if imported.
pub use std::hint::black_box;

/// Declares a benchmark group: a function that runs each target with a
/// fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
